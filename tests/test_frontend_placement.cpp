// Tests: front-end console I/O (§3, Fig. 1), dynamic placement policies,
// and the NOW cost-model preset.
#include <gtest/gtest.h>

#include <set>

#include "runtime/api.hpp"

namespace hal {
namespace {

class Talker : public ActorBase {
 public:
  void on_say(Context& ctx, std::int64_t delay_us, std::int64_t tag) {
    ctx.charge_ns(static_cast<SimTime>(delay_us) * 1000);
    char line[32];
    std::snprintf(line, sizeof line, "tag=%lld", static_cast<long long>(tag));
    ctx.print(line);
  }
  HAL_BEHAVIOR(Talker, &Talker::on_say)
};

class FrontEndTest : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    return c;
  }
};

TEST_P(FrontEndTest, CollectsLinesFromEveryNode) {
  Runtime rt(cfg(4));
  rt.load<Talker>();
  for (NodeId n = 0; n < 4; ++n) {
    const MailAddress t = rt.spawn<Talker>(n);
    rt.inject<&Talker::on_say>(t, std::int64_t{100 * (n + 1)},
                               std::int64_t{n});
  }
  rt.run();
  const auto lines = rt.console();
  ASSERT_EQ(lines.size(), 4u);
  std::set<NodeId> nodes_seen;
  for (const auto& l : lines) nodes_seen.insert(l.node);
  EXPECT_EQ(nodes_seen.size(), 4u);
}

TEST_P(FrontEndTest, SimOrdersLinesByVirtualTime) {
  if (GetParam() != MachineKind::kSim) GTEST_SKIP();
  Runtime rt(cfg(3));
  rt.load<Talker>();
  // Emission delays deliberately inverted vs node order.
  const std::int64_t delays[3] = {900, 100, 500};
  for (NodeId n = 0; n < 3; ++n) {
    const MailAddress t = rt.spawn<Talker>(n);
    rt.inject<&Talker::on_say>(t, delays[n], std::int64_t{n});
  }
  rt.run();
  const auto lines = rt.console();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "tag=1");
  EXPECT_EQ(lines[1].text, "tag=2");
  EXPECT_EQ(lines[2].text, "tag=0");
  EXPECT_LE(lines[0].time, lines[1].time);
  EXPECT_LE(lines[1].time, lines[2].time);
}

INSTANTIATE_TEST_SUITE_P(Machines, FrontEndTest,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread),
                         [](const auto& param_info) {
                           return param_info.param == MachineKind::kSim
                                      ? "Sim"
                                      : "Thread";
                         });

// --- Placement policies -----------------------------------------------------------

class Probe : public ActorBase {
 public:
  void on_nop(Context&) {}
  HAL_BEHAVIOR(Probe, &Probe::on_nop)
};

class Placer : public ActorBase {
 public:
  void on_spread(Context& ctx, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      created.push_back(ctx.create_spread<Probe>());
    }
  }
  void on_random(Context& ctx, std::int64_t count) {
    for (std::int64_t i = 0; i < count; ++i) {
      created.push_back(ctx.create_random<Probe>());
    }
  }
  HAL_BEHAVIOR(Placer, &Placer::on_spread, &Placer::on_random)
  inline static std::vector<MailAddress> created;
};

TEST(Placement, RoundRobinSpreadCoversAllNodesEvenly) {
  Placer::created.clear();
  RuntimeConfig cfg;
  cfg.nodes = 4;
  Runtime rt(cfg);
  rt.load<Probe>();
  rt.load<Placer>();
  const MailAddress p = rt.spawn<Placer>(0);
  rt.inject<&Placer::on_spread>(p, std::int64_t{12});
  rt.run();
  ASSERT_EQ(Placer::created.size(), 12u);
  std::map<NodeId, int> per_node;
  for (const auto& a : Placer::created) ++per_node[a.fallback_node()];
  ASSERT_EQ(per_node.size(), 4u);
  for (const auto& [node, count] : per_node) EXPECT_EQ(count, 3);
}

TEST(Placement, RandomPlacementIsSeededAndInRange) {
  auto run_once = [] {
    Placer::created.clear();
    RuntimeConfig cfg;
    cfg.nodes = 5;
    cfg.seed = 99;
    Runtime rt(cfg);
    rt.load<Probe>();
    rt.load<Placer>();
    const MailAddress p = rt.spawn<Placer>(2);
    rt.inject<&Placer::on_random>(p, std::int64_t{30});
    rt.run();
    std::vector<NodeId> nodes;
    for (const auto& a : Placer::created) {
      EXPECT_LT(a.fallback_node(), 5u);
      nodes.push_back(a.fallback_node());
    }
    return nodes;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b) << "random placement must be deterministic per seed";
  EXPECT_GT(std::set<NodeId>(a.begin(), a.end()).size(), 1u);
}

// --- NOW cost preset ----------------------------------------------------------------

TEST(NowPreset, HigherLatencyStretchesRemoteTraffic) {
  auto ping_time = [](const am::CostModel& costs) {
    RuntimeConfig cfg;
    cfg.nodes = 2;
    cfg.costs = costs;
    Runtime rt(cfg);
    rt.load<Talker>();
    const MailAddress t = rt.spawn<Talker>(1);
    rt.inject<&Talker::on_say>(t, std::int64_t{0}, std::int64_t{1});
    rt.run();
    return rt.report().makespan_ns;
  };
  const SimTime cm5 = ping_time(am::CostModel::cm5());
  const SimTime now_t = ping_time(am::CostModel::now());
  // The makespan includes identical node-local kernel costs, so the ratio
  // is well below the raw 12x latency gap; 3x is the robust signal.
  EXPECT_GT(now_t, 3 * cm5);
}

}  // namespace
}  // namespace hal
