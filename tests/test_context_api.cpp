// Tests: remaining Context / compiled API surface — create_init variants,
// prefilled join slots, send_static_cont, broadcast with continuations,
// and the HALlite interpreter under the threaded machine.
#include <gtest/gtest.h>

#include "lang/interp.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

class Worker : public ActorBase {
 public:
  void on_init(Context&, std::int64_t seed) { value_ = seed; }
  void on_scale(Context& ctx, std::int64_t k) {
    value_ *= k;
    ctx.reply(value_);
  }
  HAL_BEHAVIOR(Worker, &Worker::on_init, &Worker::on_scale)
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Driver : public ActorBase {
 public:
  void on_create_init_local(Context& ctx) {
    made = ctx.create_init<&Worker::on_init>(std::int64_t{7});
  }
  void on_create_init_remote(Context& ctx, NodeId target) {
    made = ctx.create_init_on<&Worker::on_init>(target, std::int64_t{9});
  }
  void on_prefilled_join(Context& ctx, MailAddress w) {
    // Three slots: two prefilled at creation (Fig. 4's known arguments),
    // one filled by a reply.
    const ContRef jc = ctx.make_join(
        3, [](Context&, const JoinView& v) {
          observed = static_cast<std::int64_t>(v.word(0) + v.word(1)) +
                     v.get<std::int64_t>(2);
        });
    ctx.prefill(jc.at(0), std::uint64_t{100});
    ctx.prefill(jc.at(1), std::uint64_t{20});
    ctx.send_cont<&Worker::on_scale>(w, jc.at(2), std::int64_t{3});
  }
  void on_static_cont(Context& ctx, MailAddress w) {
    const ContRef jc = ctx.make_join(
        1, [](Context&, const JoinView& v) {
          observed = v.get<std::int64_t>(0);
        });
    // Compiled fast path with a reply continuation: the callee runs on this
    // stack, the reply routes through the join continuation.
    compiled::send_static_cont<&Worker::on_scale>(ctx, w, jc.at(0),
                                                  std::int64_t{5});
  }
  HAL_BEHAVIOR(Driver, &Driver::on_create_init_local,
               &Driver::on_create_init_remote, &Driver::on_prefilled_join,
               &Driver::on_static_cont)
  inline static MailAddress made{};
  inline static std::int64_t observed = 0;
};

struct ContextApi : ::testing::Test {
  void SetUp() override {
    Driver::made = {};
    Driver::observed = 0;
  }
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    return c;
  }
};

TEST_F(ContextApi, CreateInitLocal) {
  Runtime rt(cfg(1));
  rt.load<Worker>();
  rt.load<Driver>();
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_create_init_local>(d);
  rt.run();
  const Worker* w = rt.find_behavior<Worker>(Driver::made);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->value(), 7);
}

TEST_F(ContextApi, CreateInitRemoteArrivesFirst) {
  Runtime rt(cfg(3));
  rt.load<Worker>();
  rt.load<Driver>();
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_create_init_remote>(d, NodeId{2});
  rt.run();
  ASSERT_TRUE(Driver::made.alias);
  const Worker* w = rt.find_behavior<Worker>(Driver::made);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->value(), 9);  // the init message was delivered first
}

TEST_F(ContextApi, PrefilledJoinSlots) {
  Runtime rt(cfg(2));
  rt.load<Worker>();
  rt.load<Driver>();
  const MailAddress w = rt.spawn<Worker>(1);
  rt.inject<&Worker::on_init>(w, std::int64_t{4});
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_prefilled_join>(d, w);
  rt.run();
  // 100 + 20 prefilled + (4 * 3) replied.
  EXPECT_EQ(Driver::observed, 132);
}

TEST_F(ContextApi, SendStaticContDeliversReply) {
  Runtime rt(cfg(1));
  rt.load<Worker>();
  rt.load<Driver>();
  const MailAddress w = rt.spawn<Worker>(0);
  rt.inject<&Worker::on_init>(w, std::int64_t{8});
  const MailAddress d = rt.spawn<Driver>(0);
  rt.inject<&Driver::on_static_cont>(d, w);
  rt.run();
  EXPECT_EQ(Driver::observed, 40);
  EXPECT_GT(rt.report().total.get(Stat::kStaticDispatches), 0u);
}

// --- HALlite under the threaded machine ------------------------------------------

TEST(LangThreaded, ProgramsRunUnderRealThreads) {
  RuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.machine = MachineKind::kThread;
  Runtime rt(cfg);
  auto program = lang::load_program(rt, R"(
    behavior Counter {
      state value = 0;
      method inc(by) { value = value + by; }
      method get() { reply value; }
    }
    main {
      let c = new Counter on 3;
      let i = 0;
      while (i < 50) {
        send c.inc(2);
        i = i + 1;
      }
      request c.get() -> (v) { print "total " + v; }
    }
  )");
  lang::start_main(rt, program);
  rt.run();
  const auto lines = rt.console();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "total 100");
  EXPECT_EQ(rt.dead_letters(), 0u);
}

TEST(LangThreaded, MigrationUnderRealThreads) {
  RuntimeConfig cfg;
  cfg.nodes = 3;
  cfg.machine = MachineKind::kThread;
  Runtime rt(cfg);
  auto program = lang::load_program(rt, R"(
    behavior Hopper {
      state count = 0;
      method hop(t) { count = count + 1; migrate t; }
      method ask() { reply count; }
    }
    main {
      let h = new Hopper;
      send h.hop(1);
      send h.hop(2);
      send h.hop(0);
      request h.ask() -> (v) { print "hops " + v; }
    }
  )");
  lang::start_main(rt, program);
  rt.run();
  const auto lines = rt.console();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "hops 3");
}

}  // namespace
}  // namespace hal
