// Integration tests: receiver-initiated random-polling load balancing
// (Table 4's mechanism) — stealing relocatable ready actors via real
// migration, poll backoff, and work conservation.
#include <gtest/gtest.h>

#include <map>

#include "runtime/api.hpp"

namespace hal {
namespace {

/// A relocatable work item: burns virtual compute, then reports to a
/// collector. Created in bulk on one node; idle nodes should steal some.
class WorkItem : public ActorBase {
 public:
  void on_run(Context& ctx, std::int64_t grains) {
    ctx.set_relocatable(false);  // executing now; stealing is moot
    ctx.charge_work(static_cast<std::uint64_t>(grains));
    ctx.reply(static_cast<std::int64_t>(ctx.node()));
    ctx.terminate();
  }
  HAL_BEHAVIOR(WorkItem, &WorkItem::on_run)

  bool migratable() const override { return true; }
  void pack_state(ByteWriter&) const override {}
  void unpack_state(ByteReader&) override {}
};

/// Seeds N work items on the local node and joins their completions.
class Seeder : public ActorBase {
 public:
  void on_seed(Context& ctx, std::int64_t n, std::int64_t grains) {
    const ContRef join = ctx.make_join(
        static_cast<std::uint32_t>(n),
        [](Context&, const JoinView& v) {
          for (std::size_t i = 0; i < v.size(); ++i) {
            ++node_histogram[v.get<std::int64_t>(i)];
          }
          completed = v.size();
        });
    for (std::int64_t i = 0; i < n; ++i) {
      const MailAddress w = ctx.create<WorkItem>();
      ctx.set_relocatable(w, true);
      ctx.send_cont<&WorkItem::on_run>(w, join.at(static_cast<std::uint32_t>(i)),
                                       grains);
    }
  }
  HAL_BEHAVIOR(Seeder, &Seeder::on_seed)
  inline static std::map<std::int64_t, int> node_histogram{};
  inline static std::size_t completed = 0;
};

class LoadBalanceTest : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes, bool lb) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    c.load_balancing = lb;
    c.seed = 1234;
    return c;
  }
};

TEST_P(LoadBalanceTest, StealingSpreadsWork) {
  Seeder::node_histogram.clear();
  Seeder::completed = 0;
  Runtime rt(cfg(4, /*lb=*/true));
  rt.load<WorkItem>();
  rt.load<Seeder>();
  const MailAddress s = rt.spawn<Seeder>(0);
  rt.inject<&Seeder::on_seed>(s, std::int64_t{64}, std::int64_t{20000});
  rt.run();
  EXPECT_EQ(Seeder::completed, 64u);
  EXPECT_EQ(rt.dead_letters(), 0u);
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kMigrationsIn),
            stats.get(Stat::kMigrationsOut));
  if (GetParam() == MachineKind::kSim) {
    // Virtual time makes the idle transitions deterministic: nodes 1-3 sit
    // idle while node 0 grinds, so steals are guaranteed.
    EXPECT_GT(stats.get(Stat::kStealRequestsServed), 0u);
    int off_node = 0;
    for (const auto& [node, count] : Seeder::node_histogram) {
      if (node != 0) off_node += count;
    }
    EXPECT_GT(off_node, 0);
  }
}

TEST_P(LoadBalanceTest, WithoutLbEverythingRunsAtSeed) {
  Seeder::node_histogram.clear();
  Seeder::completed = 0;
  Runtime rt(cfg(4, /*lb=*/false));
  rt.load<WorkItem>();
  rt.load<Seeder>();
  const MailAddress s = rt.spawn<Seeder>(0);
  rt.inject<&Seeder::on_seed>(s, std::int64_t{32}, std::int64_t{5000});
  rt.run();
  EXPECT_EQ(Seeder::completed, 32u);
  EXPECT_EQ(Seeder::node_histogram.size(), 1u);
  EXPECT_EQ(Seeder::node_histogram[0], 32);
  EXPECT_EQ(rt.report().total.get(Stat::kStealRequestsSent), 0u);
}

TEST_P(LoadBalanceTest, SimLbReducesMakespan) {
  if (GetParam() != MachineKind::kSim) {
    GTEST_SKIP() << "makespan comparison needs virtual time";
  }
  auto measure = [&](bool lb) {
    Seeder::node_histogram.clear();
    Seeder::completed = 0;
    Runtime rt(cfg(8, lb));
    rt.load<WorkItem>();
    rt.load<Seeder>();
    const MailAddress s = rt.spawn<Seeder>(0);
    rt.inject<&Seeder::on_seed>(s, std::int64_t{128}, std::int64_t{50000});
    rt.run();
    EXPECT_EQ(Seeder::completed, 128u);
    return rt.report().makespan_ns;
  };
  const SimTime without = measure(false);
  const SimTime with = measure(true);
  // 128 items × 3 ms of work over 8 nodes: stealing should cut the
  // makespan by a large factor (paper Table 4's with/without LB contrast).
  EXPECT_LT(with, without / 2);
}

TEST_P(LoadBalanceTest, IdleMachineStaysQuiescent) {
  // A machine with LB on but no work must terminate without poll chatter:
  // the work hint is zero, so idle nodes never send steal requests.
  Runtime rt(cfg(4, /*lb=*/true));
  rt.load<WorkItem>();
  rt.run();
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kStealRequestsSent), 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, LoadBalanceTest,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread),
                         [](const auto& param_info) {
                           return param_info.param == MachineKind::kSim
                                      ? "Sim"
                                      : "Thread";
                         });

}  // namespace
}  // namespace hal
