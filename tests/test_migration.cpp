// Integration tests: migration, the FIR protocol (§4.3), forward-chain
// collapse, descriptor caching across moves, and exactly-once delivery under
// relocation. These exercise the Fig. 3 delivery algorithm end to end.
#include <gtest/gtest.h>

#include "runtime/api.hpp"

namespace hal {
namespace {

/// A migratable actor that accumulates values while hopping across nodes.
class Wanderer : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; }
  void on_probe(Context& ctx) { ctx.reply(sum_); }
  void on_hop(Context& ctx, NodeId target) {
    ++hops_;
    ctx.migrate_to(target);
  }
  /// Constraint-guarded method: disabled until on_unlock.
  void on_guarded_add(Context&, std::int64_t v) { sum_ += 1000 * v; }
  void on_unlock(Context&) { unlocked_ = true; }

  HAL_BEHAVIOR(Wanderer, &Wanderer::on_add, &Wanderer::on_probe,
               &Wanderer::on_hop, &Wanderer::on_guarded_add,
               &Wanderer::on_unlock)

  bool method_enabled(Selector s) const override {
    if (s == sel<&Wanderer::on_guarded_add>()) return unlocked_;
    return true;
  }

  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override {
    w.write(sum_);
    w.write(hops_);
    w.write(unlocked_);
  }
  void unpack_state(ByteReader& r) override {
    sum_ = r.read<std::int64_t>();
    hops_ = r.read<std::int64_t>();
    unlocked_ = r.read<bool>();
  }

  std::int64_t sum() const { return sum_; }
  std::int64_t hops() const { return hops_; }

 private:
  std::int64_t sum_ = 0;
  std::int64_t hops_ = 0;
  bool unlocked_ = false;
};

/// Third-party sender: waits (in virtual time) then fires adds at a target.
class LateClient : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t count,
               std::int64_t delay_us) {
    ctx.charge_ns(static_cast<SimTime>(delay_us) * 1000);
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.send<&Wanderer::on_add>(target, std::int64_t{1});
    }
  }
  HAL_BEHAVIOR(LateClient, &LateClient::on_fire)
};

class MigrationTest : public ::testing::TestWithParam<MachineKind> {
 protected:
  RuntimeConfig cfg(NodeId nodes) {
    RuntimeConfig c;
    c.nodes = nodes;
    c.machine = GetParam();
    return c;
  }
  bool is_sim() const { return GetParam() == MachineKind::kSim; }
};

/// Which node currently hosts `addr` (walks forward pointers).
NodeId host_of(Runtime& rt, const MailAddress& addr) {
  NodeId node = addr.home;
  for (NodeId hops = 0; hops <= rt.nodes(); ++hops) {
    Kernel& k = rt.kernel(node);
    const SlotId ds = k.names().resolve(addr);
    if (!ds.valid()) return kInvalidNode;
    const LocalityDescriptor& d = k.names().descriptor(ds);
    if (d.local()) return node;
    node = d.remote_node;
  }
  return kInvalidNode;
}

TEST_P(MigrationTest, StateAndMailboxTravel) {
  Runtime rt(cfg(4));
  rt.load<Wanderer>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  // All five messages queue at node 0; the hops carry the rest of the
  // mailbox with the actor.
  rt.inject<&Wanderer::on_add>(w, std::int64_t{5});
  rt.inject<&Wanderer::on_hop>(w, NodeId{1});
  rt.inject<&Wanderer::on_add>(w, std::int64_t{7});
  rt.inject<&Wanderer::on_hop>(w, NodeId{2});
  rt.inject<&Wanderer::on_add>(w, std::int64_t{9});
  rt.run();
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 21);
  EXPECT_EQ(obj->hops(), 2);
  EXPECT_EQ(host_of(rt, w), 2u);
  EXPECT_EQ(rt.dead_letters(), 0u);
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kMigrationsOut), 2u);
  EXPECT_EQ(stats.get(Stat::kMigrationsIn), 2u);
}

TEST_P(MigrationTest, ThirdPartySendTriggersFirChase) {
  Runtime rt(cfg(4));
  rt.load<Wanderer>();
  rt.load<LateClient>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  const MailAddress c = rt.spawn<LateClient>(3);
  rt.inject<&Wanderer::on_hop>(w, NodeId{1});
  rt.inject<&Wanderer::on_hop>(w, NodeId{2});
  // The client fires well after both hops completed (virtual 10 ms); its
  // sends route to the birthplace, whose descriptor now forwards.
  rt.inject<&LateClient::on_fire>(c, w, std::int64_t{10},
                                  std::int64_t{10000});
  rt.run();
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 10);  // exactly-once despite the chase
  EXPECT_EQ(rt.dead_letters(), 0u);
  if (is_sim()) {
    const StatBlock stats = rt.report().total;
    EXPECT_GE(stats.get(Stat::kMessagesForwarded), 1u);
    EXPECT_GE(stats.get(Stat::kFirSent), 1u);
    EXPECT_GE(stats.get(Stat::kFirResolved), 1u);
    EXPECT_GE(stats.get(Stat::kMessagesParked), 1u);
  }
}

/// Sends one probe request to the target; once the reply arrives (causally
/// after any FIR chase resolved and this node was taught the new location),
/// fires a second burst that must route directly.
class TwoPhaseClient : public ActorBase {
 public:
  void on_fire(Context& ctx, MailAddress target, std::int64_t delay_us,
               std::int64_t burst) {
    ctx.charge_ns(static_cast<SimTime>(delay_us) * 1000);
    target_ = target;
    burst_ = burst;
    ctx.request<&Wanderer::on_probe>(
        target, [this](Context& inner, const JoinView&) {
          for (std::int64_t i = 0; i < burst_; ++i) {
            inner.send<&Wanderer::on_add>(target_, std::int64_t{1});
          }
        });
  }
  HAL_BEHAVIOR(TwoPhaseClient, &TwoPhaseClient::on_fire)

 private:
  MailAddress target_;
  std::int64_t burst_ = 0;
};

TEST_P(MigrationTest, SecondSendUsesUpdatedTables) {
  if (!is_sim()) GTEST_SKIP() << "needs deterministic virtual-time ordering";
  Runtime rt(cfg(4));
  rt.load<Wanderer>();
  rt.load<TwoPhaseClient>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  const MailAddress c = rt.spawn<TwoPhaseClient>(3);
  rt.inject<&Wanderer::on_hop>(w, NodeId{2});
  // The probe (sent long after the hop) is forwarded through node 0 and
  // triggers the FIR chase; the resolution teaches node 3 the location, so
  // the burst fired from the probe's continuation routes directly.
  rt.inject<&TwoPhaseClient::on_fire>(c, w, std::int64_t{10000},
                                      std::int64_t{5});
  rt.run();
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 5);
  const StatBlock stats = rt.report().total;
  // Only the probe should have been forwarded; the burst went direct.
  EXPECT_EQ(stats.get(Stat::kMessagesForwarded), 1u);
  // Node 3 learned the location: its descriptor names node 2 directly.
  Kernel& k3 = rt.kernel(3);
  const SlotId ds = k3.names().resolve(w);
  ASSERT_TRUE(ds.valid());
  EXPECT_EQ(k3.names().descriptor(ds).remote_node, 2u);
}

TEST_P(MigrationTest, ReturnHomeMakesBirthplaceLocalAgain) {
  Runtime rt(cfg(3));
  rt.load<Wanderer>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  rt.inject<&Wanderer::on_hop>(w, NodeId{1});
  rt.inject<&Wanderer::on_hop>(w, NodeId{0});
  rt.inject<&Wanderer::on_add>(w, std::int64_t{3});
  rt.run();
  EXPECT_EQ(host_of(rt, w), 0u);
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 3);
  // The embedded home descriptor is local again (forward chain collapsed).
  Kernel& k0 = rt.kernel(0);
  EXPECT_TRUE(k0.names().descriptor(w.desc).local());
}

TEST_P(MigrationTest, PendingConstraintMessagesTravel) {
  Runtime rt(cfg(3));
  rt.load<Wanderer>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  rt.inject<&Wanderer::on_guarded_add>(w, std::int64_t{2});  // parks: locked
  rt.inject<&Wanderer::on_hop>(w, NodeId{2});
  rt.inject<&Wanderer::on_unlock>(w);  // travels in the mailbox
  rt.run();
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  // The guarded add executed after unlock, on the new node.
  EXPECT_EQ(obj->sum(), 2000);
  EXPECT_EQ(host_of(rt, w), 2u);
  const StatBlock stats = rt.report().total;
  EXPECT_GE(stats.get(Stat::kPendingEnqueued), 1u);
}

/// Creates a Wanderer remotely (yielding an alias address), uses the alias
/// immediately, and sends it on a further hop.
class AliasSpawner : public ActorBase {
 public:
  void on_go(Context& ctx) {
    addr = ctx.create_on<Wanderer>(2);
    ctx.send<&Wanderer::on_add>(addr, std::int64_t{1});
    ctx.send<&Wanderer::on_hop>(addr, NodeId{3});
  }
  HAL_BEHAVIOR(AliasSpawner, &AliasSpawner::on_go)
  inline static MailAddress addr{};
};

TEST_P(MigrationTest, AliasStillWorksAfterMigration) {
  AliasSpawner::addr = {};
  Runtime rt(cfg(4));
  rt.load<Wanderer>();
  rt.load<LateClient>();
  rt.load<AliasSpawner>();
  const MailAddress sp = rt.spawn<AliasSpawner>(0);
  rt.inject<&AliasSpawner::on_go>(sp);
  rt.run();
  const MailAddress alias = AliasSpawner::addr;
  ASSERT_TRUE(alias.alias);
  Wanderer* obj = rt.find_behavior<Wanderer>(alias);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 1);
  EXPECT_EQ(obj->hops(), 1);
  EXPECT_EQ(host_of(rt, alias), 3u);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

TEST_P(MigrationTest, ManyHopsStressForwardChains) {
  Runtime rt(cfg(8));
  rt.load<Wanderer>();
  rt.load<LateClient>();
  const MailAddress w = rt.spawn<Wanderer>(0);
  // Tour all nodes twice.
  for (int lap = 0; lap < 2; ++lap) {
    for (NodeId n = 1; n < 8; ++n) {
      rt.inject<&Wanderer::on_hop>(w, n);
      rt.inject<&Wanderer::on_add>(w, std::int64_t{1});
    }
    rt.inject<&Wanderer::on_hop>(w, NodeId{0});
  }
  // Late third-party traffic from several nodes.
  for (NodeId n = 1; n < 4; ++n) {
    const MailAddress c = rt.spawn<LateClient>(n);
    rt.inject<&LateClient::on_fire>(c, w, std::int64_t{5},
                                    std::int64_t{30000 * n});
  }
  rt.run();
  Wanderer* obj = rt.find_behavior<Wanderer>(w);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->sum(), 14 + 15);
  EXPECT_EQ(obj->hops(), 16);
  EXPECT_EQ(host_of(rt, w), 0u);
  EXPECT_EQ(rt.dead_letters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Machines, MigrationTest,
                         ::testing::Values(MachineKind::kSim,
                                           MachineKind::kThread),
                         [](const auto& param_info) {
                           return param_info.param == MachineKind::kSim
                                      ? "Sim"
                                      : "Thread";
                         });

}  // namespace
}  // namespace hal
