// Concurrency stress tests for the ThreadMachine substrate.
//
// These are the tests the sanitizer CI presets (HAL_SANITIZE=thread|address)
// exist for: they hammer the only cross-thread structures in the system —
// MpscQueue endpoints, the TerminationDetector, and the wakeup handshake in
// ThreadMachine::send — under true preemption, then assert exact delivery
// counts and clean quiescence. Every scenario is sized to finish in a couple
// of seconds even single-core and under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "am/bulk.hpp"
#include "am/sim_machine.hpp"
#include "am/thread_machine.hpp"
#include "common/mpsc_queue.hpp"
#include "common/rng.hpp"
#include "common/termination.hpp"
#include "runtime/api.hpp"

namespace hal {
namespace {

// --- MpscQueue under contention -----------------------------------------------------

TEST(MpscQueueStress, MultiProducerFifoPerProducer) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> q;

  std::vector<std::jthread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push((p << 32) | i);  // producer id | sequence number
      }
    });
  }

  // Consume concurrently with the producers (single consumer: this thread).
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t got = 0;
  while (got < kProducers * kPerProducer) {
    if (auto v = q.pop()) {
      const std::uint64_t p = *v >> 32;
      const std::uint64_t seq = *v & 0xffffffffULL;
      ASSERT_LT(p, kProducers);
      // Vyukov MPSC preserves per-producer FIFO order.
      ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
      ++next_seq[p];
      ++got;
    }
  }
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.approx_size(), 0u);  // exact once both sides are quiescent
}

// --- TerminationDetector ---------------------------------------------------------------

TEST(TerminationDetector, ParticipantsStartActive) {
  TerminationDetector det(3);
  EXPECT_FALSE(det.all_idle());
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kBusy);
}

TEST(TerminationDetector, QuiescentWhenAllIdleAndCountersBalance) {
  TerminationDetector det(3);
  det.note_sent();
  det.note_handled();
  for (std::uint32_t i = 0; i < 3; ++i) det.deactivate(i);
  EXPECT_TRUE(det.all_idle());
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kQuiescent);
}

TEST(TerminationDetector, InFlightUnitBlocksQuiescence) {
  TerminationDetector det(2);
  det.note_sent();  // published but never handled
  det.deactivate(0);
  det.deactivate(1);
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kBusy);
  det.note_handled();
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kQuiescent);
}

TEST(TerminationDetector, OutstandingTokensAreAStall) {
  TerminationDetector det(2);
  det.deactivate(0);
  det.deactivate(1);
  EXPECT_EQ(det.check([] { return 7u; }),
            TerminationDetector::Verdict::kStalled);
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kQuiescent);
}

TEST(TerminationDetector, ReactivationIsTracked) {
  TerminationDetector det(2);
  det.deactivate(0);
  det.deactivate(1);
  det.activate(1);  // woken by a unit
  EXPECT_FALSE(det.all_idle());
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kBusy);
  det.deactivate(1);
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kQuiescent);
}

// A concurrent checker must never declare quiescence while any worker still
// has units in flight: workers cycle active->idle->active while a dedicated
// thread runs check() in a loop, and every premature kQuiescent is counted.
TEST(TerminationDetectorStress, NoFalseQuiescenceUnderChurn) {
  constexpr std::uint32_t kWorkers = 4;
  constexpr int kRounds = 2000;
  // One extra participant (slot kWorkers) belongs to the main thread and
  // stays active until the checker has exited. Without it the end of the
  // run is racy: the checker can read a stale `done` count, then observe
  // the last worker's final deactivate — a *genuine* quiescence that the
  // test would miscount as a false positive.
  TerminationDetector det(kWorkers + 1);
  std::atomic<std::uint32_t> done{0};
  std::atomic<std::uint64_t> false_positives{0};

  std::jthread checker([&] {
    while (done.load(std::memory_order_acquire) < kWorkers) {
      if (det.check([] { return 0u; }) ==
          TerminationDetector::Verdict::kQuiescent) {
        false_positives.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  {
    std::vector<std::jthread> workers;
    for (std::uint32_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&det, &done, w] {
        for (int r = 0; r < kRounds; ++r) {
          det.note_sent();  // publish one unit, then go idle with it
          det.deactivate(w);
          // (a real participant would sleep here until woken by the unit)
          det.activate(w);
          det.note_handled();
        }
        det.note_sent();
        det.note_handled();
        done.fetch_add(1, std::memory_order_release);
        det.deactivate(w);  // final idle transition
      });
    }
  }  // join workers

  checker.join();
  // While the main thread's participant was active (the checker's whole
  // lifetime), check() must have said kBusy — any kQuiescent was a real
  // protocol violation.
  EXPECT_EQ(false_positives.load(), 0u);
  det.deactivate(kWorkers);  // main thread's slot — now genuinely done
  EXPECT_EQ(det.check([] { return 0u; }),
            TerminationDetector::Verdict::kQuiescent);
  EXPECT_EQ(det.sent(), det.handled());
}

// --- ThreadMachine storms ----------------------------------------------------------------

struct StormClient : am::NodeClient {
  am::ThreadMachine* m = nullptr;
  NodeId self = 0;
  std::uint64_t seed = 0;
  std::uint64_t handled = 0;

  void handle(am::Packet p) override {
    ++handled;
    if (p.words[0] > 0) {
      Xoshiro256 rng(seed ^ (handled * 0x9e3779b97f4a7c15ULL));
      am::Packet r;
      r.src = self;
      r.dst = static_cast<NodeId>(rng.below(m->node_count()));
      r.handler = 1;
      r.words[0] = p.words[0] - 1;
      m->send(std::move(r));
    }
  }
  bool step() override { return false; }
  bool has_work() const override { return false; }
};

// N nodes x M seed packets, each relayed TTL times to random destinations
// (including self-sends). Exact conservation: every hop is handled exactly
// once and the machine quiesces with balanced epoch counters.
TEST(ThreadMachineStress, RandomRelayStormConservesPackets) {
  constexpr NodeId kNodes = 8;
  constexpr std::uint64_t kSeedsPerNode = 40;
  constexpr std::uint64_t kTtl = 24;

  am::ThreadMachine m(kNodes, am::CostModel::zero());
  std::vector<StormClient> clients(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    clients[n].m = &m;
    clients[n].self = n;
    clients[n].seed = 0xabcdef12345ULL + n;
    m.attach(n, &clients[n]);
  }
  for (NodeId n = 0; n < kNodes; ++n) {
    for (std::uint64_t i = 0; i < kSeedsPerNode; ++i) {
      am::Packet p;
      p.src = n;
      p.dst = static_cast<NodeId>((n + i) % kNodes);
      p.handler = 1;
      p.words[0] = kTtl;
      m.send(std::move(p));
    }
  }
  m.run();

  std::uint64_t total = 0;
  for (const auto& c : clients) total += c.handled;
  EXPECT_EQ(total, kNodes * kSeedsPerNode * (kTtl + 1));
  EXPECT_EQ(m.packets_sent(), m.packets_handled());
  EXPECT_EQ(m.tokens(), 0u);
}

// An empty machine must quiesce immediately (event-driven: the last node to
// deactivate detects termination; nobody sleeps through it, nobody polls).
TEST(ThreadMachineStress, EmptyMachineQuiescesImmediately) {
  for (NodeId nodes : {1u, 2u, 7u}) {
    am::ThreadMachine m(nodes, am::CostModel::zero());
    std::vector<StormClient> clients(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
      clients[n].m = &m;
      clients[n].self = n;
      m.attach(n, &clients[n]);
    }
    m.run();
    EXPECT_EQ(m.packets_sent(), 0u);
  }
}

// Termination detection has historically been the flakiest part of thread
// runtimes (lost wakeups show up one run in thousands): many short runs in
// a row catch what one long run cannot.
TEST(ThreadMachineStress, RepeatedShortRunsAlwaysTerminate) {
  for (int round = 0; round < 50; ++round) {
    am::ThreadMachine m(4, am::CostModel::zero());
    std::vector<StormClient> clients(4);
    for (NodeId n = 0; n < 4; ++n) {
      clients[n].m = &m;
      clients[n].self = n;
      clients[n].seed = static_cast<std::uint64_t>(round) * 1000 + n;
      m.attach(n, &clients[n]);
    }
    am::Packet p;
    p.src = 0;
    p.dst = static_cast<NodeId>(round % 4);
    p.handler = 1;
    p.words[0] = 16;
    m.send(std::move(p));
    m.run();
    std::uint64_t total = 0;
    for (const auto& c : clients) total += c.handled;
    ASSERT_EQ(total, 17u) << "round " << round;
  }
}

// --- Randomized bulk transfers under preemption ---------------------------------------

struct BulkStressHarness {
  am::ThreadMachine machine;
  struct Client : am::NodeClient {
    am::BulkChannel* channel = nullptr;
    std::map<std::uint64_t, Bytes> delivered;  // tag -> data
    void handle(am::Packet p) override { channel->route(p); }
    bool step() override { return false; }
    bool has_work() const override { return false; }
  };
  std::vector<Client> clients;
  std::vector<StatBlock> stats;
  std::vector<obs::ProbeRecorder> probes;
  std::vector<BufferPool> pools;
  std::vector<std::unique_ptr<am::BulkChannel>> channels;

  explicit BulkStressHarness(NodeId nodes)
      : machine(nodes, am::CostModel::zero()),
        clients(nodes),
        stats(nodes),
        probes(nodes),
        pools(nodes) {
    const am::BulkHandlers h{10, 11, 12};
    for (NodeId n = 0; n < nodes; ++n) {
      auto* client = &clients[n];
      channels.push_back(std::make_unique<am::BulkChannel>(
          machine, n, h, stats[n], probes[n], pools[n],
          [client](NodeId, std::uint64_t tag,
                   const std::array<std::uint64_t, 2>&, Bytes data) {
            client->delivered.emplace(tag, std::move(data));
          }));
      clients[n].channel = channels[n].get();
      machine.attach(n, &clients[n]);
    }
  }
};

Bytes stress_pattern(std::size_t n, std::uint64_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>((i * 131 + salt * 31) % 251);
  }
  return b;
}

// Randomized sizes — heavy on the zero-size and chunk-boundary cases — from
// every node to every other node with flow control on, so grant queues build
// up and drain while unrelated DATA streams interleave.
TEST(ThreadMachineStress, RandomizedBulkTransfersAreByteExact) {
  constexpr NodeId kNodes = 4;
  constexpr int kPerSender = 24;
  const std::size_t size_classes[] = {0, 1, 100, 0, 4095, 4096, 4097, 0,
                                      2 * 4096 + 17};

  BulkStressHarness h(kNodes);
  // expected[receiver][tag] = (size, salt)
  std::vector<std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>>>
      expected(kNodes);
  Xoshiro256 rng(0xb01dface);
  for (NodeId src = 0; src < kNodes; ++src) {
    for (int i = 0; i < kPerSender; ++i) {
      NodeId dst = static_cast<NodeId>(rng.below(kNodes - 1));
      if (dst >= src) ++dst;
      const std::size_t size =
          size_classes[rng.below(std::size(size_classes))];
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(i);
      expected[dst].emplace(tag, std::pair{size, tag});
      h.channels[src]->send(dst, tag, {0, 0}, stress_pattern(size, tag));
    }
  }
  h.machine.run();

  for (NodeId n = 0; n < kNodes; ++n) {
    ASSERT_EQ(h.clients[n].delivered.size(), expected[n].size())
        << "receiver " << n;
    for (const auto& [tag, want] : expected[n]) {
      const auto it = h.clients[n].delivered.find(tag);
      ASSERT_NE(it, h.clients[n].delivered.end()) << "tag " << tag;
      EXPECT_EQ(it->second, stress_pattern(want.first, want.second));
    }
    EXPECT_EQ(h.channels[n]->outbound_pending(), 0u);
    EXPECT_EQ(h.channels[n]->inbound_active(), 0u);
  }
}

// --- Migration storm through the full runtime --------------------------------------------

class StressNomad : public ActorBase {
 public:
  void on_add(Context&, std::int64_t v) { sum_ += v; ++messages_; }
  void on_hop(Context& ctx, NodeId target) { ctx.migrate_to(target); }
  HAL_BEHAVIOR(StressNomad, &StressNomad::on_add, &StressNomad::on_hop)
  bool migratable() const override { return true; }
  void pack_state(ByteWriter& w) const override {
    w.write(sum_);
    w.write(messages_);
  }
  void unpack_state(ByteReader& r) override {
    sum_ = r.read<std::int64_t>();
    messages_ = r.read<std::int64_t>();
  }
  std::int64_t sum() const { return sum_; }
  std::int64_t messages() const { return messages_; }

 private:
  std::int64_t sum_ = 0;
  std::int64_t messages_ = 0;
};

class StressDriver : public ActorBase {
 public:
  void on_storm(Context& ctx, std::uint64_t seed, std::int64_t ops,
                MailAddress a, MailAddress b) {
    Xoshiro256 rng(seed);
    const MailAddress targets[2] = {a, b};
    for (std::int64_t i = 0; i < ops; ++i) {
      const MailAddress& t = targets[rng.below(2)];
      if (rng.below(3) == 0) {
        ctx.send<&StressNomad::on_hop>(
            t, static_cast<NodeId>(rng.below(ctx.node_count())));
      } else {
        ctx.send<&StressNomad::on_add>(t, std::int64_t{1});
        sent_adds.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  HAL_BEHAVIOR(StressDriver, &StressDriver::on_storm)
  inline static std::atomic<std::int64_t> sent_adds{0};
};

// Migration storm under ThreadMachine with the load balancer on: hop-heavy
// traffic forces FIR chases and forwarding chains while steals relocate the
// receivers underneath them. Exactly-once delivery must survive all of it.
TEST(ThreadMachineStress, MigrationStormWithLoadBalancer) {
  constexpr NodeId kNodes = 6;
  RuntimeConfig cfg;
  cfg.nodes = kNodes;
  cfg.machine = MachineKind::kThread;
  cfg.load_balancing = true;
  cfg.seed = 0x57de55;
  Runtime rt(cfg);
  rt.load<StressNomad>();
  rt.load<StressDriver>();
  StressDriver::sent_adds = 0;

  const MailAddress a = rt.spawn<StressNomad>(0);
  const MailAddress b = rt.spawn<StressNomad>(kNodes - 1);
  for (NodeId d = 0; d < 3; ++d) {
    const MailAddress drv = rt.spawn<StressDriver>(d);
    rt.inject<&StressDriver::on_storm>(drv, 0x1000 + d, std::int64_t{150}, a,
                                       b);
  }
  rt.run();

  std::int64_t received = 0;
  for (const MailAddress& t : {a, b}) {
    const StressNomad* nm = rt.find_behavior<StressNomad>(t);
    ASSERT_NE(nm, nullptr) << "nomad lost";
    received += nm->messages();
    EXPECT_EQ(nm->sum(), nm->messages());
  }
  EXPECT_EQ(received, StressDriver::sent_adds.load());
  EXPECT_EQ(rt.dead_letters(), 0u);
  EXPECT_EQ(rt.machine().tokens(), 0u);
  const StatBlock stats = rt.report().total;
  EXPECT_EQ(stats.get(Stat::kMigrationsIn), stats.get(Stat::kMigrationsOut));
}

}  // namespace
}  // namespace hal
