// Tests: the HALlite language layer — lexer, parser, compile-time request
// lowering, and end-to-end interpreted actor programs exercising sends,
// request/reply, guards (synchronization constraints), become, placement,
// and migration on the real runtime.
#include <gtest/gtest.h>

#include "lang/interp.hpp"
#include "lang/lexer.hpp"

namespace hal::lang {
namespace {

// --- Lexer ---------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto toks = lex("x <= 42 + 3.5 -> \"hi\\n\" != // comment\n y");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].kind, Tok::kLe);
  EXPECT_EQ(toks[2].kind, Tok::kInt);
  EXPECT_EQ(toks[2].int_val, 42);
  EXPECT_EQ(toks[3].kind, Tok::kPlus);
  EXPECT_EQ(toks[4].kind, Tok::kFloat);
  EXPECT_DOUBLE_EQ(toks[4].float_val, 3.5);
  EXPECT_EQ(toks[5].kind, Tok::kArrow);
  EXPECT_EQ(toks[6].kind, Tok::kString);
  EXPECT_EQ(toks[6].text, "hi\n");
  EXPECT_EQ(toks[7].kind, Tok::kNe);
  EXPECT_EQ(toks[8].kind, Tok::kIdent);  // comment skipped
  EXPECT_EQ(toks[8].line, 2);
}

TEST(Lexer, KeywordsAreNotIdentifiers) {
  const auto toks = lex("behavior sendx send");
  EXPECT_EQ(toks[0].kind, Tok::kBehavior);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "sendx");
  EXPECT_EQ(toks[2].kind, Tok::kSend);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(lex("a # b"), LangError);
  EXPECT_THROW(lex("\"unterminated"), LangError);
  EXPECT_THROW(lex("a & b"), LangError);
}

// --- Parser / compile -------------------------------------------------------------

TEST(Compile, RequestLoweringCreatesSyntheticContinuation) {
  const auto p = Program::compile(R"(
    behavior Client {
      state total = 0;
      method go(server) {
        let bonus = 10;
        request server.ask(1) -> (v) {
          total = v + bonus;
        }
      }
    }
  )");
  const auto& b = p->behavior(0);
  ASSERT_EQ(b.methods.size(), 2u);  // go + synthetic continuation
  EXPECT_FALSE(b.methods[0].synthetic);
  EXPECT_TRUE(b.methods[1].synthetic);
  // The continuation captures the live locals (server, bonus) after the
  // reply parameter.
  ASSERT_EQ(b.methods[1].params.size(), 3u);
  EXPECT_EQ(b.methods[1].params[0], "v");
  EXPECT_EQ(b.methods[1].captures.size(), 2u);
}

TEST(Compile, ErrorsCarryLines) {
  try {
    Program::compile("behavior B { method m() { let = 3; } }");
    FAIL() << "expected LangError";
  } catch (const LangError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(Program::compile("behavior B { method m() {} method m() {} }"),
               LangError);
  EXPECT_THROW(Program::compile("main {} main {}"), LangError);
}

// --- End-to-end programs -----------------------------------------------------------

RuntimeConfig lang_cfg(NodeId nodes) {
  RuntimeConfig c;
  c.nodes = nodes;
  return c;
}

/// Run a program's main block to quiescence; return the console lines.
std::vector<std::string> run_lines(std::string_view source, NodeId nodes = 4) {
  Runtime rt(lang_cfg(nodes));
  auto program = load_program(rt, source);
  start_main(rt, program);
  rt.run();
  EXPECT_EQ(rt.dead_letters(), 0u);
  std::vector<std::string> lines;
  for (auto& l : rt.console()) lines.push_back(l.text);
  return lines;
}

TEST(LangE2E, ArithmeticAndControlFlow) {
  const auto lines = run_lines(R"(
    main {
      let sum = 0;
      let i = 1;
      while (i <= 10) {
        if (i % 2 == 0) { sum = sum + i; }
        i = i + 1;
      }
      print "even sum: " + sum;
      print 7 / 2;
      print 7.0 / 2.0;
      print -3 * -4;
      print true && !false;
    }
  )");
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "even sum: 30");
  EXPECT_EQ(lines[1], "3");
  EXPECT_EQ(lines[2], "3.5");
  EXPECT_EQ(lines[3], "12");
  EXPECT_EQ(lines[4], "true");
}

TEST(LangE2E, ActorsSendAndReply) {
  const auto lines = run_lines(R"(
    behavior Counter {
      state value = 0;
      method inc(by) { value = value + by; }
      method get() { reply value; }
    }
    main {
      let c = new Counter on 2;          // alias-based remote creation
      send c.inc(40);
      send c.inc(2);
      request c.get() -> (v) {
        print "counter says " + v;
      }
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "counter says 42");
}

TEST(LangE2E, GuardsAreSynchronizationConstraints) {
  // The take arrives before the put; the `when` guard parks it (§6.1).
  const auto lines = run_lines(R"(
    behavior Cell {
      state full = false;
      state value = nil;
      method put(v) when (!full) { value = v; full = true; }
      method take() when (full) { full = false; reply value; }
    }
    main {
      let cell = new Cell on 1;
      request cell.take() -> (v) { print "took " + v; }
      send cell.put(99);
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "took 99");
}

TEST(LangE2E, BecomeReplacesBehavior) {
  const auto lines = run_lines(R"(
    behavior Chicken {
      method speak() { reply "cluck"; }
    }
    behavior Egg {
      method speak() { reply "..."; }
      method hatch() { become Chicken; }
    }
    main {
      let e = new Egg;
      send e.hatch();
      request e.speak() -> (s) { print s; }
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "cluck");
}

TEST(LangE2E, MigrationCarriesInterpretedState) {
  const auto lines = run_lines(R"(
    behavior Wanderer {
      state hops = 0;
      method hop(target) {
        hops = hops + 1;
        migrate target;
      }
      method where() { reply "node " + node() + " after " + hops + " hops"; }
    }
    main {
      let w = new Wanderer;       // born on node 0
      send w.hop(1);
      send w.hop(2);
      send w.hop(3);
      request w.where() -> (s) { print s; }
    }
  )",
                               /*nodes=*/4);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "node 3 after 3 hops");
}

TEST(LangE2E, RecursiveFanOutWithRequests) {
  // Interpreted divide and conquer: sum 1..n by splitting across nodes.
  const auto lines = run_lines(R"(
    behavior Summer {
      method sum(lo, hi) {
        if (hi - lo < 4) {
          let s = 0;
          let i = lo;
          while (i <= hi) { s = s + i; i = i + 1; }
          reply s;
        } else {
          let mid = (lo + hi) / 2;
          let left = new Summer on (lo % nodes());
          let right = new Summer on (hi % nodes());
          request left.sum(lo, mid) -> (a) {
            request right.sum(mid + 1, hi) -> (b) {
              reply a + b;
            }
          }
        }
      }
    }
    main {
      let s = new Summer;
      request s.sum(1, 100) -> (total) {
        print "sum = " + total;
      }
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "sum = 5050");
}

TEST(LangE2E, AddressesAreFirstClass) {
  const auto lines = run_lines(R"(
    behavior Relay {
      method pass(target, n) { send target.recv(n * 2); }
    }
    behavior Sink {
      method recv(n) { print "got " + n; }
    }
    main {
      let sink = new Sink on 1;
      let relay = new Relay on 2;
      send relay.pass(sink, 21);
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "got 42");
}

TEST(LangE2E, GroupsBroadcastAndMemberSends) {
  const auto lines = run_lines(R"(
    behavior Cell {
      state sum = 0;
      state me = -1;
      method tag(i) { me = i; }
      method add(v) { sum = sum + v; }
      method report(boss) { send boss.line(me, sum); }
    }
    behavior Boss {
      state remaining;
      state grid = nil;
      method start(n) {
        remaining = n;
        grid = group Cell(n);
        let i = 0;
        while (i < n) {
          send grid[i].tag(i);       // member-indexed sends
          i = i + 1;
        }
        broadcast grid.add(10);       // replicated to every member
        broadcast grid.add(5);
        broadcast grid.report(self);
      }
      method line(who, total) {
        print "cell " + who + " total " + total;
        remaining = remaining - 1;
        if (remaining == 0) { print "all reported"; }
      }
    }
    main {
      let b = new Boss;
      send b.start(6);
    }
  )",
                               /*nodes=*/3);
  ASSERT_EQ(lines.size(), 7u);
  // Every cell got both broadcasts exactly once.
  int reported = 0;
  for (const auto& l : lines) {
    if (l.find("total 15") != std::string::npos) ++reported;
  }
  EXPECT_EQ(reported, 6);
  EXPECT_EQ(lines.back(), "all reported");
}

TEST(LangE2E, GroupMemberRequestReplies) {
  const auto lines = run_lines(R"(
    behavior Worker {
      method square(x) { reply x * x; }
    }
    main {
      let g = group Worker(4);
      request g[2].square(9) -> (v) {
        print "squared: " + v;
      }
    }
  )");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "squared: 81");
}

TEST(LangE2E, RuntimeTypeErrorsSurface) {
  Runtime rt(lang_cfg(2));
  auto program = load_program(rt, R"(
    main { print 1 + true; }
  )");
  start_main(rt, program);
  EXPECT_THROW(rt.run(), LangError);
}

TEST(LangE2E, StateInspectionFromTests) {
  Runtime rt(lang_cfg(1));
  auto program = load_program(rt, R"(
    behavior Acc {
      state total = 100;
      method add(v) { total = total + v; }
    }
    main { }
  )");
  const BehaviorId bid = rt.registry().id_of_name("Acc");
  const MailAddress a = rt.spawn_id(bid, 0);
  rt.inject_message(make_interp_message(*program, a, "add",
                                        {Value(std::int64_t{23})}));
  rt.run();
  const auto* actor = rt.find_behavior<InterpActor>(a);
  ASSERT_NE(actor, nullptr);
  EXPECT_EQ(actor->state_of("total").as_int(), 123);
}

}  // namespace
}  // namespace hal::lang
