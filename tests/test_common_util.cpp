// Unit tests: common utilities (slot pool, MPSC queue, RNG, hashing, bytes).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/mpsc_queue.hpp"
#include "common/rng.hpp"
#include "common/slot_pool.hpp"

namespace hal {
namespace {

// --- SlotPool -----------------------------------------------------------------

TEST(SlotPool, AllocateGetFree) {
  SlotPool<int> pool;
  const SlotId a = pool.allocate(41);
  const SlotId b = pool.allocate(42);
  EXPECT_EQ(pool.get(a), 41);
  EXPECT_EQ(pool.get(b), 42);
  EXPECT_EQ(pool.size(), 2u);
  pool.free(a);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.try_get(a), nullptr);
  EXPECT_NE(pool.try_get(b), nullptr);
}

TEST(SlotPool, GenerationDetectsRecycledSlot) {
  SlotPool<int> pool;
  const SlotId a = pool.allocate(1);
  pool.free(a);
  const SlotId b = pool.allocate(2);
  // Same physical slot, new generation.
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(a.gen, b.gen);
  EXPECT_EQ(pool.try_get(a), nullptr);
  EXPECT_EQ(*pool.try_get(b), 2);
}

TEST(SlotPool, InvalidIdIsNull) {
  SlotPool<int> pool;
  EXPECT_EQ(pool.try_get(SlotId{}), nullptr);
  EXPECT_FALSE(SlotId{}.valid());
}

TEST(SlotPool, PackUnpackRoundTrip) {
  const SlotId id{12345, 678};
  EXPECT_EQ(SlotId::unpack(id.pack()), id);
}

TEST(SlotPool, ForEachVisitsLiveOnly) {
  SlotPool<int> pool;
  const SlotId a = pool.allocate(1);
  pool.allocate(2);
  pool.free(a);
  int sum = 0;
  pool.for_each([&](SlotId, int& v) { sum += v; });
  EXPECT_EQ(sum, 2);
}

TEST(SlotPool, StressReuse) {
  SlotPool<std::uint64_t> pool;
  std::vector<SlotId> ids;
  Xoshiro256 rng(7);
  for (int round = 0; round < 2000; ++round) {
    if (!ids.empty() && rng.below(2) == 0) {
      const auto i = rng.below(ids.size());
      pool.free(ids[i]);
      ids[i] = ids.back();
      ids.pop_back();
    } else {
      ids.push_back(pool.allocate(rng()));
    }
    ASSERT_EQ(pool.size(), ids.size());
  }
  for (const SlotId id : ids) EXPECT_NE(pool.try_get(id), nullptr);
}

// --- MpscQueue -----------------------------------------------------------------

TEST(MpscQueue, FifoSingleProducer) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, EmptyInitially) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  EXPECT_FALSE(q.empty());
}

TEST(MpscQueue, MultiProducerDeliversAll) {
  MpscQueue<std::uint64_t> q;
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        q.push(static_cast<std::uint64_t>(p) * kPer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  std::set<std::uint64_t> seen;
  while (auto v = q.pop()) seen.insert(*v);
  EXPECT_EQ(seen.size(), kProducers * kPer);
}

TEST(MpscQueue, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

// --- RNG -------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BelowInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256 rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// --- Hashing ---------------------------------------------------------------------

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x1234567890abcdefULL);
    const std::uint64_t b = mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total += std::popcount(a ^ b);
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

TEST(Hash, Fnv1aDiffersOnContent) {
  EXPECT_NE(fnv1a("abc", 3), fnv1a("abd", 3));
  EXPECT_EQ(fnv1a("abc", 3), fnv1a("abc", 3));
}

// --- Bytes (serialization) ---------------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.write<std::uint32_t>(7);
  w.write<double>(3.25);
  w.write<std::uint8_t>(255);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 7u);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, NestedByteRanges) {
  ByteWriter inner;
  inner.write<int>(99);
  ByteWriter w;
  w.write_bytes(std::move(inner).take());
  w.write_string("hello");
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  ByteReader ir(r.read_bytes());
  EXPECT_EQ(ir.read<int>(), 99);
  EXPECT_EQ(r.read_string(), "hello");
}

TEST(Bytes, VectorRoundTrip) {
  std::vector<double> v{1.0, 2.5, -3.0};
  ByteWriter w;
  w.write_span<double>(v);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_vector<double>(), v);
}

}  // namespace
}  // namespace hal
