// hal-mc engine implementation. Design notes in mc/core.hpp.
#include "mc/core.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace hal::mc {

namespace {

thread_local Scheduler* t_sched = nullptr;
thread_local int t_tid = 0;  // 0 = the exploring (runner) thread

// Atomic only because abort-mode free-runners may still hit mutated sites
// concurrently; during exploration the token serializes every bump.
std::atomic<const Mutation*> g_mutation{nullptr};
std::atomic<std::uint64_t> g_mutation_hits{0};

bool acquire_like(int mo) {
  return mo == order::kConsume || mo == order::kAcquire ||
         mo == order::kAcqRel || mo == order::kSeqCst;
}

bool release_like(int mo) {
  return mo == order::kRelease || mo == order::kAcqRel ||
         mo == order::kSeqCst;
}

const char* order_name(int mo) {
  switch (mo) {
    case order::kRelaxed: return "relaxed";
    case order::kConsume: return "consume";
    case order::kAcquire: return "acquire";
    case order::kRelease: return "release";
    case order::kAcqRel: return "acq_rel";
    case order::kSeqCst: return "seq_cst";
    default: return "?";
  }
}

/// Thread ids are ints (slot 0 = the runner); clock/access arrays index by
/// std::size_t. Ids are never negative, so the cast is always safe.
std::size_t uz(int v) { return static_cast<std::size_t>(v); }

const char* path_basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// The one-order compare_exchange overload's failure order (C++20 rules:
/// acq_rel -> acquire, release -> relaxed, everything else unchanged).
int derived_failure_order(int success_mo) {
  if (success_mo == order::kAcqRel) return order::kAcquire;
  if (success_mo == order::kRelease) return order::kRelaxed;
  return success_mo;
}

/// Downgrade `mo` when the active mutation's site key matches this access.
int apply_mutation(const char* op, int mo, const std::source_location& sl) {
  const Mutation* m = g_mutation.load(std::memory_order_relaxed);
  if (m == nullptr || mo != m->from) return mo;
  if (std::strcmp(op, m->op) != 0) return mo;
  if (std::strstr(sl.function_name(), m->func) == nullptr) return mo;
  if (std::strstr(path_basename(sl.file_name()), m->file) == nullptr) {
    return mo;
  }
  g_mutation_hits.fetch_add(1, std::memory_order_relaxed);
  return m->to;
}

}  // namespace

void Scheduler::set_mutation(const Mutation* m) {
  g_mutation.store(m, std::memory_order_relaxed);
  g_mutation_hits.store(0, std::memory_order_relaxed);
}

std::uint64_t Scheduler::mutation_hits() {
  return g_mutation_hits.load(std::memory_order_relaxed);
}

Scheduler* Scheduler::current() { return t_sched; }

Scheduler::~Scheduler() {
  // Normal explorer flow joins in finish_execution; this is the exception
  // path (explorer unwinding). Release every parked thread first.
  {
    std::lock_guard lk(mx_);
    enter_abort_locked();
  }
  for (auto& t : threads_) {
    if (t->os.joinable()) t->os.join();
  }
  if (t_sched == this) t_sched = nullptr;
}

void Scheduler::begin_execution(const std::vector<std::uint32_t>& prefix) {
  prefix_ = prefix;
  t_sched = this;
  t_tid = 0;
  mode_.store(Mode::kSetup, std::memory_order_relaxed);
}

ThreadRec& Scheduler::self() { return *threads_[static_cast<std::size_t>(t_tid) - 1]; }

VectorClock& Scheduler::my_clock() {
  return t_tid == 0 ? runner_clock_ : self().clock;
}

View& Scheduler::my_view() { return t_tid == 0 ? runner_view_ : self().view; }

void Scheduler::spawn(std::function<void()> fn) {
  auto rec = std::make_unique<ThreadRec>();
  ThreadRec* r = rec.get();
  r->tid = static_cast<int>(threads_.size()) + 1;
  if (uz(r->tid) >= kMaxThreads) {
    fail("scenario spawned more than " + std::to_string(kMaxThreads - 1) +
         " threads");
    return;
  }
  runner_clock_.c[0]++;  // spawn edge: child inherits everything so far
  r->clock = runner_clock_;
  r->view = runner_view_;
  r->fn = std::move(fn);
  threads_.push_back(std::move(rec));
  Scheduler* s = this;
  r->os = std::thread([s, r] {
    t_sched = s;
    t_tid = r->tid;
    {
      std::unique_lock lk(s->mx_);
      s->cv_.wait(lk, [&] {
        return r->st == ThreadRec::St::kRunning ||
               s->mode_.load(std::memory_order_relaxed) == Mode::kAbort;
      });
    }
    try {
      r->fn();
    } catch (const McAbort&) {
      // Violation already recorded; just unwind this thread.
    }
    std::unique_lock lk(s->mx_);
    r->st = ThreadRec::St::kFinished;
    if (s->mode_.load(std::memory_order_relaxed) == Mode::kAbort) {
      bool all = true;
      for (auto& t : s->threads_) {
        if (t->st != ThreadRec::St::kFinished) all = false;
      }
      if (all) s->done_ = true;
      s->cv_.notify_all();
    } else {
      s->choose_next_locked();  // pass the token on
    }
  });
}

void Scheduler::run_all() {
  std::unique_lock lk(mx_);
  if (mode_.load(std::memory_order_relaxed) != Mode::kAbort) {
    mode_.store(Mode::kExploring, std::memory_order_relaxed);
  }
  if (threads_.empty()) {
    done_ = true;
  } else if (mode_.load(std::memory_order_relaxed) == Mode::kExploring) {
    choose_next_locked();
  } else {
    cv_.notify_all();  // abort during setup: free-run everyone
  }
  cv_.wait(lk, [&] { return done_; });
}

void Scheduler::finish_execution() {
  for (auto& t : threads_) {
    if (t->os.joinable()) t->os.join();
  }
  if (mode_.load(std::memory_order_relaxed) != Mode::kAbort) {
    for (auto& t : threads_) {
      runner_clock_.join(t->clock);
      runner_view_.join(t->view);
    }
    mode_.store(Mode::kPostRun, std::memory_order_relaxed);
  }
  t_tid = 0;
  // Release the thread closures now (not in ~Scheduler): shared scenario
  // state captured in them destructs here, under post-run semantics, so
  // the destruction-race checks still see a live engine.
  for (auto& t : threads_) t->fn = nullptr;
}

bool Scheduler::enabled_locked(const ThreadRec& t) const {
  if (t.st != ThreadRec::St::kReady) return false;
  if (t.pending.kind == OpKind::kMutexLock) {
    return static_cast<const MutexState*>(t.pending.obj)->owner == -1;
  }
  return true;
}

std::uint32_t Scheduler::choose(std::uint32_t noptions) {
  if (noptions <= 1) return 0;
  std::uint32_t chosen = 0;
  if (trail_.size() < prefix_.size()) {
    chosen = prefix_[trail_.size()];
    if (chosen >= noptions) chosen = noptions - 1;  // divergence guard
  }
  trail_.emplace_back(noptions, chosen);
  return chosen;
}

void Scheduler::enter_abort_locked() {
  mode_.store(Mode::kAbort, std::memory_order_relaxed);
  cv_.notify_all();
}

void Scheduler::fail(const std::string& what) {
  std::lock_guard lk(mx_);
  if (!violation_.has_value()) violation_ = Violation{what, trace_};
  enter_abort_locked();
}

void Scheduler::record_violation(const std::string& what) { fail(what); }

void Scheduler::scenario_violation(const std::string& what,
                                   const std::source_location& sl) {
  fail(what + " [" + path_basename(sl.file_name()) + ":" +
       std::to_string(sl.line()) + "]");
  throw McAbort{};
}

void Scheduler::trace_note(const std::string& line) {
  if (!opt_.trace || aborted()) return;
  trace_.push_back(line);
}

void Scheduler::choose_next_locked() {
  if (mode_.load(std::memory_order_relaxed) == Mode::kAbort) {
    cv_.notify_all();
    return;
  }
  // Eager prologue: a freshly spawned thread runs to its first visible op
  // without a choice point (the prologue touches no shared state).
  for (auto& t : threads_) {
    if (t->st == ThreadRec::St::kReady && t->pending.kind == OpKind::kBegin) {
      t->st = ThreadRec::St::kRunning;
      cv_.notify_all();
      return;
    }
  }
  std::vector<int> options;
  bool cur_enabled = false;
  if (cur_ >= 1 &&
      enabled_locked(*threads_[static_cast<std::size_t>(cur_) - 1])) {
    cur_enabled = true;
    options.push_back(cur_);  // continuing the running thread comes first
  }
  for (auto& t : threads_) {
    if (t->tid != cur_ && enabled_locked(*t)) options.push_back(t->tid);
  }
  if (options.empty()) {
    bool all_finished = true;
    std::string blocked;
    for (auto& t : threads_) {
      if (t->st == ThreadRec::St::kFinished) continue;
      all_finished = false;
      if (!blocked.empty()) blocked += ", ";
      blocked += 't';
      blocked += std::to_string(t->tid);
      blocked += t->st == ThreadRec::St::kBlockedCv ? " (cv wait)"
                                                    : " (mutex wait)";
    }
    if (all_finished) {
      done_ = true;
      cv_.notify_all();
      return;
    }
    if (!violation_.has_value()) {
      violation_ =
          Violation{"deadlock: no runnable thread; blocked: " + blocked,
                    trace_};
    }
    enter_abort_locked();
    return;
  }
  std::uint32_t nopt = static_cast<std::uint32_t>(options.size());
  if (cur_enabled && preemptions_ >= opt_.preemption_bound) {
    nopt = 1;  // over budget: the running thread keeps the token
  }
  const int chosen = options[choose(nopt)];
  if (cur_enabled && chosen != cur_) ++preemptions_;
  cur_ = chosen;
  threads_[static_cast<std::size_t>(chosen) - 1]->st = ThreadRec::St::kRunning;
  cv_.notify_all();
}

bool Scheduler::yield_point(const PendingOp& op) {
  if (setup_like()) return true;
  std::unique_lock lk(mx_);
  if (mode_.load(std::memory_order_relaxed) == Mode::kAbort) return false;
  ThreadRec& me = self();
  me.pending = op;
  me.st = ThreadRec::St::kReady;
  if (++steps_ > opt_.max_steps) {
    step_cap_hit_ = true;  // not a violation: the run is just unbounded
    enter_abort_locked();
    return false;
  }
  choose_next_locked();
  cv_.wait(lk, [&] {
    return me.st == ThreadRec::St::kRunning ||
           mode_.load(std::memory_order_relaxed) == Mode::kAbort;
  });
  return mode_.load(std::memory_order_relaxed) != Mode::kAbort;
}

std::uint32_t Scheduler::register_location(Location& loc) {
  if (aborted()) {
    std::lock_guard lk(mx_);
    loc.creator = t_tid;
    loc.id = next_loc_id_++;
    return loc.id;
  }
  VectorClock& ck = my_clock();
  ck.c[uz(t_tid)]++;
  loc.creator = t_tid;
  loc.create_epoch = ck.c[uz(t_tid)];
  loc.id = next_loc_id_++;
  return loc.id;
}

void Scheduler::destroy_location(Location& loc) {
  if (mode_.load(std::memory_order_relaxed) != Mode::kExploring) return;
  VectorClock& ck = my_clock();
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    if (t == uz(t_tid)) continue;
    if (loc.access[t] > ck.c[t]) {
      fail("atomic #" + std::to_string(loc.id) +
           " destroyed while t" + std::to_string(t) +
           "'s last access does not happen-before the destruction");
      return;
    }
  }
}

bool Scheduler::pre_op(Location& loc, const std::source_location& sl) {
  VectorClock& ck = my_clock();
  ck.c[uz(t_tid)]++;
  if (mode_.load(std::memory_order_relaxed) == Mode::kExploring &&
      t_tid != loc.creator && ck.c[uz(loc.creator)] < loc.create_epoch) {
    fail("init race: atomic #" + std::to_string(loc.id) + " used at " +
         path_basename(sl.file_name()) + ":" + std::to_string(sl.line()) +
         " by t" + std::to_string(t_tid) +
         " without happens-before from its construction (t" +
         std::to_string(loc.creator) + ")");
    return false;
  }
  if (loc.access[uz(t_tid)] < ck.c[uz(t_tid)]) {
    loc.access[uz(t_tid)] = ck.c[uz(t_tid)];
  }
  return true;
}

void Scheduler::trace_op(const Location& loc, const std::source_location& sl,
                         const char* op, int mo, std::uint64_t val,
                         bool extra_note, const char* note) {
  if (!opt_.trace ||
      mode_.load(std::memory_order_relaxed) == Mode::kAbort) {
    return;
  }
  std::string line = "t";
  line += std::to_string(t_tid);
  line += "  ";
  line += path_basename(sl.file_name());
  line += ':';
  line += std::to_string(sl.line());
  line += "  ";
  line += op;
  line += '(';
  line += order_name(mo);
  line += ") @a";
  line += std::to_string(loc.id);
  line += " -> ";
  line += std::to_string(val);
  if (extra_note) {
    line += "  [";
    line += note;
    line += "]";
  }
  trace_.push_back(line);
}

std::uint64_t Scheduler::atomic_load(Location& loc, int mo,
                                     const std::source_location& sl,
                                     const char* op) {
  mo = apply_mutation(op, mo, sl);
  const bool sc = mo == order::kSeqCst;
  PendingOp p;
  p.kind = OpKind::kAtomic;
  p.loc = loc.id;
  p.write = false;
  p.sc = sc;
  if (!yield_point(p)) {
    std::lock_guard lk(mx_);
    return loc.msgs.back().val;
  }
  if (!pre_op(loc, sl)) {
    std::lock_guard lk(mx_);
    return loc.msgs.back().val;
  }
  View& vw = my_view();
  VectorClock& ck = my_clock();
  const std::uint32_t last = static_cast<std::uint32_t>(loc.msgs.size()) - 1;
  std::uint32_t idx = last;
  if (mode_.load(std::memory_order_relaxed) == Mode::kExploring) {
    // The S total order constrains a seq_cst load of THIS location to read
    // no earlier than the latest seq_cst access of it. It is consulted as
    // a per-location floor only: folding the whole sc view into the thread
    // view would also pin later *relaxed* loads of unrelated locations,
    // which no C++ rule does (and which would mask scan-order mutants).
    std::uint32_t floor = vw.get(loc.id);
    if (sc) floor = std::max(floor, sc_view_.get(loc.id));
    idx = last - choose(last - floor + 1);  // k = 0 reads the latest
  }
  const Msg& m = loc.msgs[idx];
  vw.raise(loc.id, idx);
  if (acquire_like(mo)) {
    vw.join(m.view);
    ck.join(m.hb);
  }
  if (sc) sc_view_.raise(loc.id, idx);
  trace_op(loc, sl, op, mo, m.val, idx != last, "stale read");
  return m.val;
}

void Scheduler::atomic_store(Location& loc, std::uint64_t v, int mo,
                             const std::source_location& sl) {
  mo = apply_mutation("store", mo, sl);
  const bool sc = mo == order::kSeqCst;
  PendingOp p;
  p.kind = OpKind::kAtomic;
  p.loc = loc.id;
  p.write = true;
  p.sc = sc;
  if (!yield_point(p) || !pre_op(loc, sl)) {
    std::lock_guard lk(mx_);
    loc.msgs.push_back(Msg{v, {}, {}});
    return;
  }
  View& vw = my_view();
  VectorClock& ck = my_clock();
  Msg m;
  m.val = v;
  if (release_like(mo)) {
    m.view = vw;
    m.hb = ck;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(loc.msgs.size());
  loc.msgs.push_back(std::move(m));
  vw.raise(loc.id, idx);
  if (sc) sc_view_.raise(loc.id, idx);
  trace_op(loc, sl, "store", mo, v, false, "");
}

std::uint64_t Scheduler::atomic_rmw(
    Location& loc, const std::function<std::uint64_t(std::uint64_t)>& f,
    int mo, const std::source_location& sl, const char* op) {
  mo = apply_mutation(op, mo, sl);
  const bool sc = mo == order::kSeqCst;
  PendingOp p;
  p.kind = OpKind::kAtomic;
  p.loc = loc.id;
  p.write = true;
  p.sc = sc;
  if (!yield_point(p) || !pre_op(loc, sl)) {
    std::lock_guard lk(mx_);
    const std::uint64_t old = loc.msgs.back().val;
    loc.msgs.push_back(Msg{f(old), {}, {}});
    return old;
  }
  View& vw = my_view();
  VectorClock& ck = my_clock();
  const std::uint32_t idx = static_cast<std::uint32_t>(loc.msgs.size()) - 1;
  const Msg cur = loc.msgs[idx];  // copy: the push below reallocates
  vw.raise(loc.id, idx);
  if (acquire_like(mo)) {
    vw.join(cur.view);
    ck.join(cur.hb);
  }
  Msg nm;
  nm.val = f(cur.val);
  nm.view = cur.view;  // release-sequence continuation: RMWs of any order
  nm.hb = cur.hb;      // keep the head release's metadata alive
  if (release_like(mo)) {
    nm.view.join(vw);
    nm.hb.join(ck);
  }
  loc.msgs.push_back(std::move(nm));
  vw.raise(loc.id, idx + 1);
  if (sc) sc_view_.raise(loc.id, idx + 1);
  trace_op(loc, sl, op, mo, cur.val, true, "rmw read");
  return cur.val;
}

std::pair<std::uint64_t, bool> Scheduler::atomic_cas(
    Location& loc, std::uint64_t expected, std::uint64_t desired,
    int success_mo, int failure_mo, const std::source_location& sl,
    const char* op) {
  success_mo = apply_mutation(op, success_mo, sl);
  if (failure_mo < 0) failure_mo = derived_failure_order(success_mo);
  const bool sc =
      success_mo == order::kSeqCst || failure_mo == order::kSeqCst;
  PendingOp p;
  p.kind = OpKind::kAtomic;
  p.loc = loc.id;
  p.write = true;  // conservative: may write
  p.sc = sc;
  if (!yield_point(p) || !pre_op(loc, sl)) {
    std::lock_guard lk(mx_);
    const std::uint64_t old = loc.msgs.back().val;
    if (old == expected) loc.msgs.push_back(Msg{desired, {}, {}});
    return {old, old == expected};
  }
  View& vw = my_view();
  VectorClock& ck = my_clock();
  const std::uint32_t idx = static_cast<std::uint32_t>(loc.msgs.size()) - 1;
  const Msg cur = loc.msgs[idx];  // copy: the push below reallocates
  vw.raise(loc.id, idx);
  if (cur.val == expected) {
    if (acquire_like(success_mo)) {
      vw.join(cur.view);
      ck.join(cur.hb);
    }
    Msg nm;
    nm.val = desired;
    nm.view = cur.view;
    nm.hb = cur.hb;
    if (release_like(success_mo)) {
      nm.view.join(vw);
      nm.hb.join(ck);
    }
    loc.msgs.push_back(std::move(nm));
    vw.raise(loc.id, idx + 1);
    if (success_mo == order::kSeqCst) sc_view_.raise(loc.id, idx + 1);
    trace_op(loc, sl, op, success_mo, cur.val, true, "cas ok");
    return {cur.val, true};
  }
  if (acquire_like(failure_mo)) {
    vw.join(cur.view);
    ck.join(cur.hb);
  }
  if (failure_mo == order::kSeqCst) sc_view_.raise(loc.id, idx);
  trace_op(loc, sl, op, failure_mo, cur.val, true, "cas fail");
  return {cur.val, false};
}

void Scheduler::mutex_lock(MutexState& m) {
  PendingOp p;
  p.kind = OpKind::kMutexLock;
  p.obj = &m;
  if (!yield_point(p)) {
    for (;;) {  // abort free-run: spin for the mutex
      {
        std::lock_guard lk(mx_);
        if (m.owner == -1) {
          m.owner = t_tid;
          return;
        }
      }
      std::this_thread::yield();
    }
  }
  // Exploring: enabledness guaranteed the mutex is free; setup/post-run:
  // single-threaded, so it is free too.
  my_clock().c[uz(t_tid)]++;
  m.owner = t_tid;
  my_clock().join(m.clock);
  my_view().join(m.view);
}

void Scheduler::mutex_unlock(MutexState& m) {
  PendingOp p;
  p.kind = OpKind::kMutexUnlock;
  p.obj = &m;
  if (!yield_point(p)) {
    std::lock_guard lk(mx_);
    m.owner = -1;
    return;
  }
  my_clock().c[uz(t_tid)]++;
  m.clock.join(my_clock());
  m.view.join(my_view());
  m.owner = -1;
}

void Scheduler::cv_wait(CvState& cv, MutexState& m) {
  PendingOp p;
  p.kind = OpKind::kCvWait;
  p.obj = &cv;
  if (!yield_point(p)) return;  // abort free-run: spurious return, lock kept
  if (setup_like()) return;     // single-threaded: waiting cannot progress
  // Release the mutex, join the waitset, hand the token on.
  my_clock().c[uz(t_tid)]++;
  m.clock.join(my_clock());
  m.view.join(my_view());
  m.owner = -1;
  std::unique_lock lk(mx_);
  ThreadRec& me = self();
  cv.waiters.push_back(t_tid);
  me.st = ThreadRec::St::kBlockedCv;
  me.relock = &m;
  choose_next_locked();
  cv_.wait(lk, [&] {
    return me.st == ThreadRec::St::kRunning ||
           mode_.load(std::memory_order_relaxed) == Mode::kAbort;
  });
  if (mode_.load(std::memory_order_relaxed) == Mode::kAbort) {
    lk.unlock();
    for (;;) {  // abort free-run: reacquire before returning
      {
        std::lock_guard g(mx_);
        if (m.owner == -1) {
          m.owner = t_tid;
          return;
        }
      }
      std::this_thread::yield();
    }
  }
  // A notify made us kReady with a pending relock; being scheduled means
  // the mutex was free at the choice point, and the token kept it so.
  lk.unlock();
  my_clock().c[uz(t_tid)]++;
  m.owner = t_tid;
  my_clock().join(m.clock);
  my_view().join(m.view);
}

void Scheduler::cv_notify(CvState& cv, bool all) {
  PendingOp p;
  p.kind = OpKind::kCvNotify;
  p.obj = &cv;
  if (!yield_point(p)) return;  // abort: blocked threads already released
  if (setup_like()) return;
  my_clock().c[uz(t_tid)]++;
  // No clock transfer: happens-before flows through the mutex relock, as
  // with a real condition variable. Waiters wake FIFO, and notifying an
  // empty waitset is a no-op — exactly the lost-wakeup mechanics.
  std::lock_guard lk(mx_);
  while (!cv.waiters.empty()) {
    const int w = cv.waiters.front();
    cv.waiters.erase(cv.waiters.begin());
    ThreadRec& t = *threads_[static_cast<std::size_t>(w) - 1];
    t.st = ThreadRec::St::kReady;
    t.pending = PendingOp{};
    t.pending.kind = OpKind::kMutexLock;
    t.pending.obj = t.relock;
    if (!all) break;
  }
}

void Scheduler::cell_access(std::array<std::uint64_t, kMaxThreads>& reads,
                            std::uint64_t& write_epoch, int& write_tid,
                            bool is_write, const std::source_location& sl) {
  const Mode md = mode_.load(std::memory_order_relaxed);
  if (md == Mode::kAbort) return;
  VectorClock& ck = my_clock();
  ck.c[uz(t_tid)]++;
  if (md == Mode::kExploring) {
    const auto racy = [&](const char* what, int other) {
      std::string msg = "data race on plain cell at ";
      msg += path_basename(sl.file_name());
      msg += ':';
      msg += std::to_string(sl.line());
      msg += " (t";
      msg += std::to_string(t_tid);
      msg += " vs t";
      msg += std::to_string(other);
      msg += "'s ";
      msg += what;
      msg += ')';
      fail(msg);
    };
    if (write_tid != t_tid && write_epoch > ck.c[uz(write_tid)]) {
      racy("write", write_tid);
      return;
    }
    if (is_write) {
      for (std::size_t t = 0; t < kMaxThreads; ++t) {
        if (t != uz(t_tid) && reads[t] > ck.c[t]) {
          racy("read", static_cast<int>(t));
          return;
        }
      }
    }
  }
  if (is_write) {
    write_epoch = ck.c[uz(t_tid)];
    write_tid = t_tid;
  } else {
    reads[uz(t_tid)] = ck.c[uz(t_tid)];
  }
}

}  // namespace hal::mc
