// hal-mc core: the bounded model checker's execution engine.
//
// hal-mc instantiates the protocol cores in src/common and src/am with
// `ModelAtomics` (mc/atomic.hpp) instead of `StdAtomics` and explores the
// interleavings of their visible operations exhaustively, under an
// operational release/acquire memory model, so the memory orders the code
// requests are shown SUFFICIENT (no reachable violation), not merely
// unchanged (hal-lint HL007's job). docs/model-checking.md is the user
// guide; this header is the engine contract.
//
// Memory model (view-based, per-location message lists):
//   * Every atomic location carries its modification order as an appended
//     message list. A store appends; an RMW reads the LAST message and
//     appends (atomicity). A load may read any message at-or-after the
//     reading thread's coherence floor for that location — each eligible
//     message is an explored branch.
//   * Messages carry a release view (location -> minimum message index)
//     and a release vector clock. Acquire-or-stronger reads join both into
//     the reader; release-or-stronger writes snapshot the writer's. RMWs
//     continue release sequences: the new message inherits the view/clock
//     of the message it replaced.
//   * seq_cst is approximated by a global sc view joined into every sc
//     operation before it runs, with sc writes (and reads) raising it: the
//     single total order S is identified with the execution order. This is
//     a strengthening of C++ seq_cst (some genuine sc behaviors where S
//     diverges from execution order are not generated), so "no violation"
//     claims are modulo this approximation — see docs/model-checking.md.
//   * Plain data (mc::Cell) is race-checked with vector clocks; atomic
//     construction and destruction are non-atomic accesses and are checked
//     the same way (the Vyukov queue's node-init handoff depends on it).
//
// Exploration:
//   * Stateless DFS over the choice tree: a thread choice before every
//     visible operation, a value choice at every load with more than one
//     eligible message. Replay is deterministic (no wall clock, no RNG).
//   * Thread prologues (spawn up to the first visible operation) touch no
//     shared state, so they are scheduled eagerly without a choice point —
//     the only reduction applied, because it is the only one that is
//     trivially sound under value choices (a load's eligible-message set
//     depends on execution order, which defeats the usual commutation
//     argument for pending-op independence).
//   * A CHESS-style preemption bound caps schedule divergence; scenarios
//     are sized so the bounded space is exhausted well inside CI budget.
//   * Model threads are OS threads driven by a single run token: exactly
//     one thread executes between choice points, so the engine's own state
//     needs no synchronization beyond the handoff.
//
// Violations (lost element, duplicate take, data race, premature
// quiescence, deadlock) abort the execution: the engine switches to a
// serialized free-run mode so threads parked inside noexcept protocol code
// unwind without exceptions, then reports the recorded trace.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <source_location>
#include <string>
#include <thread>
#include <vector>

namespace hal::mc {

inline constexpr std::size_t kMaxThreads = 8;

/// Memory orders as plain ints (the engine never includes <atomic> values
/// from call sites directly; mc/atomic.hpp maps std::memory_order here).
namespace order {
inline constexpr int kRelaxed = 0;
inline constexpr int kConsume = 1;  ///< treated as acquire
inline constexpr int kAcquire = 2;
inline constexpr int kRelease = 3;
inline constexpr int kAcqRel = 4;
inline constexpr int kSeqCst = 5;
}  // namespace order

/// Per-thread epoch clock for happens-before (race detection).
struct VectorClock {
  std::array<std::uint64_t, kMaxThreads> c{};

  void join(const VectorClock& o) {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
};

/// Coherence floors: location id -> minimum eligible message index.
struct View {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> floors;

  std::uint32_t get(std::uint32_t loc) const {
    for (const auto& [l, f] : floors) {
      if (l == loc) return f;
    }
    return 0;
  }
  void raise(std::uint32_t loc, std::uint32_t idx) {
    for (auto& [l, f] : floors) {
      if (l == loc) {
        if (idx > f) f = idx;
        return;
      }
    }
    floors.emplace_back(loc, idx);
  }
  void join(const View& o) {
    for (const auto& [l, f] : o.floors) raise(l, f);
  }
};

/// One entry of a location's modification order.
struct Msg {
  std::uint64_t val = 0;
  View view;       ///< floors an acquirer of this message inherits
  VectorClock hb;  ///< clock an acquirer of this message joins
};

class Scheduler;

/// Model state of one atomic location (owned by an mc::Atomic cell).
struct Location {
  std::uint32_t id = 0;
  int creator = -1;
  std::uint64_t create_epoch = 0;
  std::vector<Msg> msgs;
  // Last access epoch per thread, for the destruction-race check.
  std::array<std::uint64_t, kMaxThreads> access{};
};

enum class OpKind : std::uint8_t {
  kBegin,
  kAtomic,
  kMutexLock,
  kMutexUnlock,
  kCvWait,
  kCvNotify,
};

struct PendingOp {
  OpKind kind = OpKind::kBegin;
  std::uint32_t loc = 0;       ///< atomic ops: location id
  bool write = false;          ///< atomic ops: store or RMW
  bool sc = false;             ///< atomic ops: seq_cst
  const void* obj = nullptr;   ///< mutex/cv ops: primitive identity
};

/// Model mutex (mc/sync.hpp wraps this with a std::mutex-shaped API).
struct MutexState {
  int owner = -1;
  VectorClock clock;
  View view;
};

/// Model condition variable: FIFO waiter list, no spurious wakeups (a lost
/// wakeup therefore manifests as a deadlock, which the engine reports).
struct CvState {
  std::vector<int> waiters;
};

/// Thrown by MC_ASSERT out of scenario code when an invariant fails; the
/// engine records the violation first, so catchers just unwind.
struct McAbort {};

/// A memory-order mutation: downgrade `op` accesses matching the site key
/// (file basename substring, enclosing-function substring, op name,
/// requested order) to `to`. Used to prove each order is load-bearing.
struct Mutation {
  const char* file = nullptr;
  const char* func = nullptr;
  const char* op = nullptr;
  int from = 0;  ///< std::memory_order as int (avoid header dependency)
  int to = 0;
};

struct Violation {
  std::string what;
  std::vector<std::string> trace;
};

/// One model thread's engine-side record.
struct ThreadRec {
  int tid = -1;
  std::function<void()> fn;
  std::thread os;
  VectorClock clock;
  View view;
  enum class St : std::uint8_t {
    kReady,      ///< parked at a choice boundary, pending op announced
    kRunning,    ///< holds the run token
    kBlockedCv,  ///< in a cv waitset; enabled only after a notify
    kFinished,
  } st = St::kReady;
  PendingOp pending;
  const MutexState* relock = nullptr;  ///< cv wait: mutex to reacquire
};

class Scheduler {
 public:
  struct Options {
    std::uint32_t preemption_bound = 3;
    std::uint64_t max_steps = 50000;
    bool trace = false;  ///< record a per-op trace (replay-only: costly)
  };

  explicit Scheduler(Options opt) : opt_(opt) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  // --- exploration lifecycle (driven by mc/explore.cpp) ----------------
  /// Reset per-execution state and install this scheduler as current.
  void begin_execution(const std::vector<std::uint32_t>& prefix);
  /// Register a model thread (call between begin_execution and run_all).
  void spawn(std::function<void()> fn);
  /// Run every registered thread to completion under the DFS schedule.
  void run_all();
  /// After run_all: joins clocks/views into the runner and enters post-run
  /// mode (loads read latest, no choices) for final checks and dtors.
  void finish_execution();

  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& trail() const {
    return trail_;
  }
  const std::optional<Violation>& violation() const { return violation_; }
  bool step_cap_hit() const { return step_cap_hit_; }

  // --- mutation --------------------------------------------------------
  static void set_mutation(const Mutation* m);  // nullptr = none
  static std::uint64_t mutation_hits();

  // --- called from model code (mc/atomic.hpp, mc/sync.hpp) -------------
  static Scheduler* current();

  std::uint32_t register_location(Location& loc);
  void destroy_location(Location& loc);

  std::uint64_t atomic_load(Location& loc, int mo,
                            const std::source_location& sl, const char* op);
  void atomic_store(Location& loc, std::uint64_t v, int mo,
                    const std::source_location& sl);
  /// Generic RMW: `f` maps the read value to the stored value.
  std::uint64_t atomic_rmw(Location& loc,
                           const std::function<std::uint64_t(std::uint64_t)>& f,
                           int mo, const std::source_location& sl,
                           const char* op);
  /// CAS: returns read value and success flag; on failure only reads the
  /// latest message (documented strengthening: no stale-read failures and
  /// no spurious weak-CAS failures are generated). Pass failure_mo = -1 to
  /// derive it from the (possibly mutated) success order as the one-order
  /// std overload does.
  std::pair<std::uint64_t, bool> atomic_cas(Location& loc,
                                            std::uint64_t expected,
                                            std::uint64_t desired,
                                            int success_mo, int failure_mo,
                                            const std::source_location& sl,
                                            const char* op);

  void mutex_lock(MutexState& m);
  void mutex_unlock(MutexState& m);
  void cv_wait(CvState& cv, MutexState& m);
  void cv_notify(CvState& cv, bool all);

  /// Plain-data race check (mc::Cell). Non-throwing: a detected race is
  /// recorded and the execution aborts into free-run mode.
  void cell_access(std::array<std::uint64_t, kMaxThreads>& reads,
                   std::uint64_t& write_epoch, int& write_tid, bool is_write,
                   const std::source_location& sl);

  /// Scenario-invariant failure: records the violation and throws McAbort
  /// (call only from exception-tolerant scenario code).
  [[noreturn]] void scenario_violation(const std::string& what,
                                       const std::source_location& sl);
  /// Record a violation without throwing (engine-internal detections).
  void record_violation(const std::string& what);
  bool aborted() const {
    return mode_.load(std::memory_order_relaxed) == Mode::kAbort;
  }

  void trace_note(const std::string& line);

 private:
  enum class Mode : std::uint8_t { kSetup, kExploring, kAbort, kPostRun };

  ThreadRec& self();
  bool setup_like() const {
    const Mode m = mode_.load(std::memory_order_relaxed);
    return m == Mode::kSetup || m == Mode::kPostRun;
  }
  /// Announce a pending op, run the thread-choice point, park until this
  /// thread holds the run token again. Returns false in abort mode (the
  /// caller executes minimal free-run semantics).
  bool yield_point(const PendingOp& op);
  /// Pick the next thread to run (token holder context, mx_ held).
  void choose_next_locked();
  std::uint32_t choose(std::uint32_t noptions);
  void enter_abort_locked();
  /// Record a violation (first wins) and flip to abort mode. Token-holder
  /// context only; takes mx_ itself.
  void fail(const std::string& what);
  bool enabled_locked(const ThreadRec& t) const;

  VectorClock& my_clock();
  View& my_view();
  /// Init-race + access-mark bookkeeping shared by every atomic op.
  /// Returns false when the op found a violation (engine is now aborting).
  bool pre_op(Location& loc, const std::source_location& sl);
  void trace_op(const Location& loc, const std::source_location& sl,
                const char* op, int mo, std::uint64_t val, bool extra_note,
                const char* note);

  Options opt_;

  // Engine state, touched only by the token holder (or the runner while
  // no thread runs). The std::mutex below protects ONLY the handoff.
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  VectorClock runner_clock_;
  View runner_view_;
  View sc_view_;
  std::uint32_t next_loc_id_ = 0;
  std::uint64_t steps_ = 0;
  bool step_cap_hit_ = false;
  // Atomic only for the abort/free-run phase, where finished threads race
  // to read it; everywhere else it changes under the run token or mx_.
  std::atomic<Mode> mode_{Mode::kSetup};
  int cur_ = -1;  ///< last thread scheduled for a real op (preemption acct)
  std::uint32_t preemptions_ = 0;

  std::vector<std::uint32_t> prefix_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> trail_;  // (n, chosen)

  std::optional<Violation> violation_;
  std::vector<std::string> trace_;

  std::mutex mx_;
  std::condition_variable cv_;
  bool done_ = false;
};

}  // namespace hal::mc

/// Scenario-code invariant. On failure records a violation (with the
/// current trace) and unwinds the calling thread via McAbort.
#define MC_ASSERT(cond, what)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::hal::mc::Scheduler* mc_s = ::hal::mc::Scheduler::current();    \
      if (mc_s != nullptr && !mc_s->aborted()) {                       \
        mc_s->scenario_violation((what), std::source_location::current()); \
      }                                                                \
    }                                                                  \
  } while (false)
