// Model synchronization primitives and race-checked plain data for hal-mc
// scenarios.
//
//   * mc::Mutex / mc::CondVar mirror std::mutex / std::condition_variable
//     closely enough that scenario code can reproduce the ThreadMachine
//     park shape verbatim (std::unique_lock<mc::Mutex> works — BasicLockable).
//     The model cv never wakes spuriously and notifies FIFO, so a lost
//     wakeup manifests deterministically as a reported deadlock instead of
//     a hang.
//   * mc::Cell<T> is a plain (non-atomic) value with a FastTrack-style
//     vector-clock race check on every access: payloads handed across the
//     protocols live in Cells, so a mutation that severs the release/acquire
//     edge shows up as a concrete data race on the payload, not just as a
//     wrong value.
#pragma once

#include <array>
#include <cstdint>
#include <source_location>

#include "mc/core.hpp"

namespace hal::mc {

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (Scheduler* s = Scheduler::current()) s->mutex_lock(st_);
  }
  void unlock() {
    if (Scheduler* s = Scheduler::current()) s->mutex_unlock(st_);
  }

  MutexState& state() { return st_; }

 private:
  MutexState st_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Lock>
  void wait(Lock& lk) {
    if (Scheduler* s = Scheduler::current()) {
      s->cv_wait(st_, lk.mutex()->state());
    }
  }
  void notify_one() {
    if (Scheduler* s = Scheduler::current()) s->cv_notify(st_, false);
  }
  void notify_all() {
    if (Scheduler* s = Scheduler::current()) s->cv_notify(st_, true);
  }

 private:
  CvState st_;
};

/// Race-checked plain value. Every get/set records the accessing thread's
/// epoch; an access unordered (by the model's happens-before) with a prior
/// write — or a write unordered with a prior read — is a violation.
template <typename T>
class Cell {
 public:
  Cell() = default;
  explicit Cell(T v) : v_(v) {}
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  T get(const std::source_location& sl =
            std::source_location::current()) const {
    if (Scheduler* s = Scheduler::current()) {
      s->cell_access(reads_, write_epoch_, write_tid_, /*is_write=*/false,
                     sl);
    }
    return v_;
  }

  void set(T v, const std::source_location& sl =
                    std::source_location::current()) {
    if (Scheduler* s = Scheduler::current()) {
      s->cell_access(reads_, write_epoch_, write_tid_, /*is_write=*/true,
                     sl);
    }
    v_ = v;
  }

 private:
  T v_{};
  mutable std::array<std::uint64_t, kMaxThreads> reads_{};
  mutable std::uint64_t write_epoch_ = 0;
  mutable int write_tid_ = 0;  // slot 0 = the runner (initial value)
};

}  // namespace hal::mc
