#include "mc/explore.hpp"

#include <utility>

namespace hal::mc {

std::vector<Scenario>& registry() {
  static std::vector<Scenario> r;
  return r;
}

Register::Register(Scenario s) { registry().push_back(std::move(s)); }

namespace {

struct RunOutcome {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> trail;
  bool violation = false;
  Violation v;
  bool step_capped = false;
};

RunOutcome run_once(const Scenario& scenario, Scheduler::Options opt,
                    const std::vector<std::uint32_t>& prefix) {
  Scheduler sched(opt);
  sched.begin_execution(prefix);
  Sim sim(sched);
  scenario.body(sim);  // setup + spawns (threads wait for the schedule)
  sched.run_all();
  sched.finish_execution();
  if (!sched.violation().has_value()) {
    for (const auto& hook : sim.finishers()) {
      try {
        hook();
      } catch (const McAbort&) {
        break;  // violation recorded by MC_ASSERT
      }
    }
  }
  // Drop the scenario's lambdas (and with them the shared state) while the
  // scheduler is still alive: destructors run under post-run semantics and
  // keep their destruction-race checks.
  sim.clear();
  RunOutcome out;
  out.trail = sched.trail();
  out.step_capped = sched.step_cap_hit();
  if (sched.violation().has_value()) {
    out.violation = true;
    out.v = *sched.violation();
  }
  return out;
}

/// Next DFS prefix: deepest choice with an unexplored sibling, advanced by
/// one. Empty optional = the whole bounded tree is explored.
bool next_prefix(const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                     trail,
                 std::vector<std::uint32_t>& prefix) {
  for (std::size_t i = trail.size(); i-- > 0;) {
    const auto [n, chosen] = trail[i];
    if (chosen + 1 < n) {
      prefix.clear();
      for (std::size_t j = 0; j < i; ++j) prefix.push_back(trail[j].second);
      prefix.push_back(chosen + 1);
      return true;
    }
  }
  return false;
}

}  // namespace

ExploreResult explore(const Scenario& scenario, const ExploreOverrides& ov) {
  Scheduler::Options opt;
  opt.preemption_bound = ov.preemption_bound != 0 ? ov.preemption_bound
                                                  : scenario.preemption_bound;
  opt.max_steps = ov.max_steps != 0 ? ov.max_steps : scenario.max_steps;
  const std::uint64_t max_execs =
      ov.max_executions != 0 ? ov.max_executions : scenario.max_executions;

  ExploreResult r;
  std::vector<std::uint32_t> prefix;
  for (;;) {
    RunOutcome out = run_once(scenario, opt, prefix);
    ++r.executions;
    if (out.step_capped) r.step_capped = true;
    if (out.violation) {
      r.violation_found = true;
      r.violation = std::move(out.v);
      if (r.violation.trace.empty()) {
        // Replay the same schedule with tracing on for a readable report.
        Scheduler::Options topt = opt;
        topt.trace = true;
        std::vector<std::uint32_t> replay;
        replay.reserve(out.trail.size());
        for (const auto& [n, chosen] : out.trail) replay.push_back(chosen);
        RunOutcome traced = run_once(scenario, topt, replay);
        if (traced.violation) r.violation = std::move(traced.v);
      }
      break;
    }
    if (r.executions >= max_execs) {
      r.exec_capped = true;
      break;
    }
    if (!next_prefix(out.trail, prefix)) {
      r.exhausted = !r.step_capped;
      break;
    }
  }
  r.mutation_hits = Scheduler::mutation_hits();
  return r;
}

}  // namespace hal::mc
