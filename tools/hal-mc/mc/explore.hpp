// Scenario registry and the DFS exploration driver.
//
// A Scenario's body runs once per execution on the exploring thread: it
// builds the shared state (kept alive by shared_ptr captures), spawns the
// model threads, and registers finish() hooks that assert whole-execution
// invariants in post-run mode (loads read the final value, the runner has
// joined every thread). explore() then enumerates schedules depth-first
// until the bounded space is exhausted, a violation is found, or the
// execution cap trips.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mc/core.hpp"

namespace hal::mc {

class Sim {
 public:
  explicit Sim(Scheduler& sched) : sched_(sched) {}

  /// Spawn a model thread running `fn` under the explored schedule.
  void thread(std::function<void()> fn) { sched_.spawn(std::move(fn)); }

  /// Register a post-run invariant hook (runs after every thread joined,
  /// skipped when the execution already aborted with a violation).
  void finish(std::function<void()> fn) {
    finishers_.push_back(std::move(fn));
  }

  /// Annotate the trace (no-op unless tracing is on).
  void note(const std::string& line) { sched_.trace_note(line); }

  // Explorer side.
  const std::vector<std::function<void()>>& finishers() const {
    return finishers_;
  }
  void clear() { finishers_.clear(); }

 private:
  Scheduler& sched_;
  std::vector<std::function<void()>> finishers_;
};

struct Scenario {
  std::string name;
  std::string description;
  std::function<void(Sim&)> body;
  /// True for regression scenarios that reproduce a known-bad protocol
  /// (e.g. the PR 8 pre-fix park loop): the checker must find a violation.
  bool expect_violation = false;
  /// Per-scenario bounds (the CLI can override).
  std::uint32_t preemption_bound = 3;
  std::uint64_t max_executions = 200000;
  std::uint64_t max_steps = 20000;
};

struct ExploreResult {
  std::uint64_t executions = 0;
  bool exhausted = false;      ///< full bounded space covered
  bool step_capped = false;    ///< some execution hit max_steps
  bool exec_capped = false;    ///< stopped at max_executions
  bool violation_found = false;
  Violation violation;         ///< valid iff violation_found
  std::uint64_t mutation_hits = 0;
};

struct ExploreOverrides {
  std::uint32_t preemption_bound = 0;  ///< 0 = scenario default
  std::uint64_t max_executions = 0;
  std::uint64_t max_steps = 0;
};

/// Run the bounded DFS for one scenario. Stops at the first violation and
/// re-executes that schedule with tracing on, so the returned violation
/// carries a full per-op trace.
ExploreResult explore(const Scenario& scenario,
                      const ExploreOverrides& ov = {});

/// Global scenario registry (populated by static Register objects in
/// scenarios/*.cpp).
std::vector<Scenario>& registry();

struct Register {
  explicit Register(Scenario s);
};

/// One entry of the mutation matrix (scenarios/mutants.cpp): downgrade one
/// memory order inside a protocol and name the scenario that must catch it.
struct MutantDef {
  const char* name;      ///< stable CLI id, e.g. "mpsc_push_link_relaxed"
  Mutation mutation;
  const char* scenario;  ///< scenario expected to report a violation
  const char* expect;    ///< one-line description of the expected failure
};

const std::vector<MutantDef>& mutants();

}  // namespace hal::mc
