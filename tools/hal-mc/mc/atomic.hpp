// Model atomic cell + the `ModelAtomics` policy (common/atomic_policy.hpp
// seam). Instantiating a protocol core with `ModelAtomics` routes every
// atomic access through the hal-mc Scheduler: each access becomes a choice
// boundary, loads may return any coherence-eligible message, and each call
// site's file/function (via std::source_location default arguments) keys
// the mutation machinery that downgrades a single access's memory order.
//
// Documented strengthenings versus std::atomic (see docs/model-checking.md):
//   * compare_exchange_weak never fails spuriously;
//   * a failed compare_exchange reads the latest message, not a stale one;
//   * modification order equals execution order of the writes.
#pragma once

#include <atomic>
#include <cstdint>
#include <source_location>
#include <type_traits>

#include "mc/core.hpp"

namespace hal::mc {

namespace detail {

inline int to_order(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return order::kRelaxed;
    case std::memory_order_consume: return order::kConsume;
    case std::memory_order_acquire: return order::kAcquire;
    case std::memory_order_release: return order::kRelease;
    case std::memory_order_acq_rel: return order::kAcqRel;
    case std::memory_order_seq_cst: return order::kSeqCst;
  }
  return order::kSeqCst;
}

template <typename T>
std::uint64_t encode(T v) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<std::uint64_t>(v);
  } else {
    return static_cast<std::uint64_t>(v);  // enums/bools/ints, wraps signed
  }
}

template <typename T>
T decode(std::uint64_t u) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(static_cast<std::uintptr_t>(u));
  } else {
    return static_cast<T>(u);
  }
}

}  // namespace detail

/// Drop-in stand-in for std::atomic<T> over the model engine. Supports the
/// operation set the protocol cores use: load/store/exchange/fetch_add/
/// fetch_sub/compare_exchange_{weak,strong}; T is a pointer, integer, bool
/// or scoped enum that fits in 64 bits.
template <typename T>
class Atomic {
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "mc::Atomic models values up to 64 bits");

 public:
  Atomic() : Atomic(T{}) {}

  // Implicit like std::atomic's value constructor (members brace-init
  // their cells: `Atomic<Node*> next{nullptr}`).
  Atomic(T v) {  // NOLINT(google-explicit-constructor)
    loc_.msgs.push_back(Msg{detail::encode(v), {}, {}});
    if (Scheduler* s = Scheduler::current()) s->register_location(loc_);
  }

  ~Atomic() {
    if (Scheduler* s = Scheduler::current()) s->destroy_location(loc_);
  }

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst,
         const std::source_location& sl =
             std::source_location::current()) const {
    Scheduler* s = Scheduler::current();
    if (s == nullptr) return detail::decode<T>(loc_.msgs.back().val);
    return detail::decode<T>(
        s->atomic_load(loc_, detail::to_order(mo), sl, "load"));
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst,
             const std::source_location& sl =
                 std::source_location::current()) {
    Scheduler* s = Scheduler::current();
    if (s == nullptr) {
      loc_.msgs.push_back(Msg{detail::encode(v), {}, {}});
      return;
    }
    s->atomic_store(loc_, detail::encode(v), detail::to_order(mo), sl);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst,
             const std::source_location& sl =
                 std::source_location::current()) {
    const std::uint64_t nv = detail::encode(v);
    return rmw([nv](std::uint64_t) { return nv; }, mo, sl, "exchange");
  }

  template <typename U = T>
  T fetch_add(U delta, std::memory_order mo = std::memory_order_seq_cst,
              const std::source_location& sl =
                  std::source_location::current()) {
    static_assert(std::is_integral_v<T>);
    const std::uint64_t d = detail::encode<T>(static_cast<T>(delta));
    return rmw([d](std::uint64_t old) { return old + d; }, mo, sl,
               "fetch_add");
  }

  template <typename U = T>
  T fetch_sub(U delta, std::memory_order mo = std::memory_order_seq_cst,
              const std::source_location& sl =
                  std::source_location::current()) {
    static_assert(std::is_integral_v<T>);
    const std::uint64_t d = detail::encode<T>(static_cast<T>(delta));
    return rmw([d](std::uint64_t old) { return old - d; }, mo, sl,
               "fetch_sub");
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst,
                             const std::source_location& sl =
                                 std::source_location::current()) {
    return cas(expected, desired, detail::to_order(mo), -1, sl,
               "compare_exchange_weak");
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure,
                             const std::source_location& sl =
                                 std::source_location::current()) {
    return cas(expected, desired, detail::to_order(success),
               detail::to_order(failure), sl, "compare_exchange_weak");
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo =
                                   std::memory_order_seq_cst,
                               const std::source_location& sl =
                                   std::source_location::current()) {
    return cas(expected, desired, detail::to_order(mo), -1, sl,
               "compare_exchange_strong");
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure,
                               const std::source_location& sl =
                                   std::source_location::current()) {
    return cas(expected, desired, detail::to_order(success),
               detail::to_order(failure), sl, "compare_exchange_strong");
  }

 private:
  template <typename F>
  T rmw(F&& f, std::memory_order mo, const std::source_location& sl,
        const char* op) {
    Scheduler* s = Scheduler::current();
    if (s == nullptr) {
      const std::uint64_t old = loc_.msgs.back().val;
      loc_.msgs.push_back(Msg{f(old), {}, {}});
      return detail::decode<T>(old);
    }
    return detail::decode<T>(
        s->atomic_rmw(loc_, f, detail::to_order(mo), sl, op));
  }

  bool cas(T& expected, T desired, int success_mo, int failure_mo,
           const std::source_location& sl, const char* op) {
    Scheduler* s = Scheduler::current();
    if (s == nullptr) {
      const std::uint64_t old = loc_.msgs.back().val;
      const bool ok = old == detail::encode(expected);
      if (ok) loc_.msgs.push_back(Msg{detail::encode(desired), {}, {}});
      expected = detail::decode<T>(old);
      return ok;
    }
    const auto [old, ok] =
        s->atomic_cas(loc_, detail::encode(expected),
                      detail::encode(desired), success_mo, failure_mo, sl,
                      op);
    if (!ok) expected = detail::decode<T>(old);
    return ok;
  }

  mutable Location loc_;
};

/// The hal-mc side of the atomics-policy seam: pass as the `Policy`
/// template argument of MpscQueue / WsDeque / BasicTerminationDetector /
/// RunTokenCell / ParkHandshake to check the production code itself.
struct ModelAtomics {
  template <typename T>
  using Atomic = ::hal::mc::Atomic<T>;
};

}  // namespace hal::mc
