// hal-mc: bounded model checker for the HAL lock-free protocol cores.
//
// Instantiates the production protocol templates (MpscQueue, WsDeque,
// BasicTerminationDetector, RunTokenCell, ParkHandshake) with model
// atomics and explores their interleavings exhaustively under a weak
// (release/acquire + seq_cst) memory model. Two modes:
//
//   hal-mc --all        run every registered scenario to exhaustion; fail
//                       on any violation (or, for expect_violation
//                       regressions, on the violation NOT being found).
//   hal-mc --mutants    re-run each scenario with one pinned memory order
//                       downgraded; fail unless every mutant is caught.
//
// See docs/model-checking.md for the model and its documented
// strengthenings, and tools/hal-lint HL007 for the static half of the
// memory-order story.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mc/explore.hpp"

namespace hal::mc {
namespace {

struct Cli {
  bool list = false;
  bool all = false;
  bool run_mutants = false;
  std::string scenario;
  std::string mutate;
  ExploreOverrides ov;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: hal-mc [--list] [--all] [--scenario=NAME] [--mutants]\n"
      "              [--mutate=NAME] [--preemptions=N] [--max-execs=N]\n"
      "              [--max-steps=N]\n"
      "  --list            list scenarios and mutants\n"
      "  --all             run every scenario (default)\n"
      "  --scenario=NAME   run one scenario\n"
      "  --mutants         run the whole mutation matrix\n"
      "  --mutate=NAME     run one mutant\n"
      "  --preemptions=N   override the scenario's preemption bound\n"
      "  --max-execs=N     override the execution cap\n"
      "  --max-steps=N     override the per-execution step cap\n",
      out);
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void print_violation(const Violation& v) {
  std::printf("    violation: %s\n", v.what.c_str());
  for (const std::string& line : v.trace) {
    std::printf("      %s\n", line.c_str());
  }
}

/// Run one scenario and report. Returns true when it behaved as required:
/// no violation AND full exhaustion for normal scenarios, a found
/// violation for expect_violation regressions.
bool run_scenario(const Scenario& s, const ExploreOverrides& ov) {
  std::printf("[ mc ] %s\n", s.name.c_str());
  const ExploreResult r = explore(s, ov);
  if (s.expect_violation) {
    if (r.violation_found) {
      std::printf("  PASS  expected violation found after %llu executions: "
                  "%s\n",
                  static_cast<unsigned long long>(r.executions),
                  r.violation.what.c_str());
      return true;
    }
    std::printf("  FAIL  expected a violation, none found (%llu executions"
                "%s%s)\n",
                static_cast<unsigned long long>(r.executions),
                r.exhausted ? ", exhausted" : "",
                r.exec_capped ? ", execution cap hit" : "");
    return false;
  }
  if (r.violation_found) {
    std::printf("  FAIL  after %llu executions\n",
                static_cast<unsigned long long>(r.executions));
    print_violation(r.violation);
    return false;
  }
  if (!r.exhausted) {
    std::printf("  FAIL  not exhausted (%llu executions%s%s) — raise the "
                "caps or shrink the scenario\n",
                static_cast<unsigned long long>(r.executions),
                r.exec_capped ? ", execution cap hit" : "",
                r.step_capped ? ", step cap hit" : "");
    return false;
  }
  std::printf("  PASS  exhausted %llu executions, no violation\n",
              static_cast<unsigned long long>(r.executions));
  return true;
}

/// Run one mutant: the scenario must now report a violation, and the
/// mutation must actually have fired (hits > 0) so a stale site key can
/// never pass silently.
bool run_mutant(const MutantDef& m, const ExploreOverrides& ov) {
  const Scenario* s = find_scenario(m.scenario);
  if (s == nullptr) {
    std::printf("[ mc ] mutant %s: unknown scenario %s\n", m.name,
                m.scenario);
    return false;
  }
  std::printf("[ mc ] mutant %s (%s.%s %s)\n", m.name, m.mutation.file,
              m.mutation.op, m.mutation.func);
  Scheduler::set_mutation(&m.mutation);
  const ExploreResult r = explore(*s, ov);
  Scheduler::set_mutation(nullptr);
  if (r.mutation_hits == 0) {
    std::printf("  FAIL  mutation never matched an access — stale site "
                "key\n");
    return false;
  }
  if (!r.violation_found) {
    std::printf("  FAIL  downgrade not caught (%llu executions, %llu "
                "mutated accesses)\n",
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.mutation_hits));
    return false;
  }
  std::printf("  PASS  caught after %llu executions: %s\n",
              static_cast<unsigned long long>(r.executions),
              r.violation.what.c_str());
  std::printf("        expected: %s\n", m.expect);
  return true;
}

int run(const Cli& cli) {
  if (cli.list) {
    std::printf("scenarios:\n");
    for (const Scenario& s : registry()) {
      std::printf("  %-28s %s%s\n", s.name.c_str(), s.description.c_str(),
                  s.expect_violation ? " [expect-violation]" : "");
    }
    std::printf("mutants:\n");
    for (const MutantDef& m : mutants()) {
      std::printf("  %-28s -> %s: %s\n", m.name, m.scenario, m.expect);
    }
    return 0;
  }

  int failures = 0;
  int ran = 0;
  if (!cli.scenario.empty()) {
    const Scenario* s = find_scenario(cli.scenario);
    if (s == nullptr) {
      std::fprintf(stderr, "hal-mc: unknown scenario '%s'\n",
                   cli.scenario.c_str());
      return 2;
    }
    ++ran;
    failures += run_scenario(*s, cli.ov) ? 0 : 1;
  } else if (!cli.mutate.empty()) {
    const MutantDef* found = nullptr;
    for (const MutantDef& m : mutants()) {
      if (cli.mutate == m.name) found = &m;
    }
    if (found == nullptr) {
      std::fprintf(stderr, "hal-mc: unknown mutant '%s'\n",
                   cli.mutate.c_str());
      return 2;
    }
    ++ran;
    failures += run_mutant(*found, cli.ov) ? 0 : 1;
  } else if (cli.run_mutants) {
    for (const MutantDef& m : mutants()) {
      ++ran;
      failures += run_mutant(m, cli.ov) ? 0 : 1;
    }
  } else {
    for (const Scenario& s : registry()) {
      ++ran;
      failures += run_scenario(s, cli.ov) ? 0 : 1;
    }
  }
  std::printf("hal-mc: %d/%d passed\n", ran - failures, ran);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hal::mc

namespace {

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using hal::mc::Cli;
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--mutants") {
      cli.run_mutants = true;
    } else if (const char* v = val("--scenario=")) {
      cli.scenario = v;
    } else if (const char* v2 = val("--mutate=")) {
      cli.mutate = v2;
    } else if (const char* v3 = val("--preemptions=")) {
      if (!parse_u64(v3, n)) { hal::mc::usage(stderr); return 2; }
      cli.ov.preemption_bound = static_cast<std::uint32_t>(n);
    } else if (const char* v4 = val("--max-execs=")) {
      if (!parse_u64(v4, n)) { hal::mc::usage(stderr); return 2; }
      cli.ov.max_executions = n;
    } else if (const char* v5 = val("--max-steps=")) {
      if (!parse_u64(v5, n)) { hal::mc::usage(stderr); return 2; }
      cli.ov.max_steps = n;
    } else if (arg == "--help" || arg == "-h") {
      hal::mc::usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "hal-mc: unknown option '%s'\n", arg.c_str());
      hal::mc::usage(stderr);
      return 2;
    }
  }
  return hal::mc::run(cli);
}
