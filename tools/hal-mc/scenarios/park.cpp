// Scenarios: the park/wake handshake (am/park_handshake.hpp) around a
// Vyukov MPSC inbox — the ThreadMachine::park / raw_push protocol.
//
// park_wakeup is the production shape: the consumer re-arms before EVERY
// predicate evaluation; a producer that claims the wake takes the mutex
// before notifying. The model condition variable never wakes spuriously
// and never drops a notify sent to a waiter, so the only way the consumer
// can sleep forever is a genuine protocol lost wakeup — which the checker
// reports as a deadlock. The interesting interleaving is PR 8's: one
// producer's push is paused between its head_ exchange and the next-link
// store, making the other producer's completed push transiently
// unreachable; the consumer wakes, sees a genuinely empty-looking queue,
// and must re-arm before waiting again or the paused producer's eventual
// claim_wake() reads false and nobody ever notifies.
//
// park_lost_wakeup_pr8 is the regression twin: the pre-fix shape that
// arms ONCE before the wait loop. expect_violation — hal-mc must find the
// lost-wakeup deadlock (two queued units, consumer parked forever).
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>

#include "am/park_handshake.hpp"
#include "common/mpsc_queue.hpp"
#include "mc/atomic.hpp"
#include "mc/explore.hpp"
#include "mc/sync.hpp"

namespace hal::mc {
namespace {

struct ParkState {
  MpscQueue<std::uint64_t, ModelAtomics> q;
  am::ParkHandshake<ModelAtomics> hs;
  Mutex mx;
  CondVar cv;
  std::array<Cell<std::uint64_t>, 2> payload;
};

void producer(const std::shared_ptr<ParkState>& st, std::uint64_t i) {
  st->payload[i].set(500 + i);
  st->q.push(i);
  if (st->hs.claim_wake()) {
    // The lock is what keeps this notify from landing between the
    // consumer's predicate check and its wait (ThreadMachine::raw_push).
    st->mx.lock();
    st->mx.unlock();
    st->cv.notify_one();
  }
}

void consumer(const std::shared_ptr<ParkState>& st, bool rearm_each_pass) {
  int received = 0;
  for (int attempt = 0; attempt < 10 && received < 2; ++attempt) {
    if (auto v = st->q.pop()) {
      MC_ASSERT(*v < 2, "park: popped value out of range");
      MC_ASSERT(st->payload[*v].get() == 500 + *v,
                "park: payload does not match its unit");
      ++received;
      continue;
    }
    std::unique_lock<Mutex> lk(st->mx);
    if (!rearm_each_pass) st->hs.arm();  // the PR 8 pre-fix bug
    for (;;) {
      if (rearm_each_pass) st->hs.arm();
      if (!st->q.empty()) break;
      st->cv.wait(lk);
    }
    lk.unlock();
    st->hs.disarm();
  }
  MC_ASSERT(received == 2, "park: queued unit never delivered");
}

void park_wakeup(Sim& sim) {
  auto st = std::make_shared<ParkState>();
  sim.thread([st] { producer(st, 0); });
  sim.thread([st] { producer(st, 1); });
  sim.thread([st] { consumer(st, /*rearm_each_pass=*/true); });
}

void park_lost_wakeup_pr8(Sim& sim) {
  auto st = std::make_shared<ParkState>();
  sim.thread([st] { producer(st, 0); });
  sim.thread([st] { producer(st, 1); });
  sim.thread([st] { consumer(st, /*rearm_each_pass=*/false); });
}

const Register reg_wakeup{Scenario{
    .name = "park_wakeup",
    .description = "park/wake handshake, production shape (arm before every "
                   "predicate evaluation): no lost wakeup, payloads race-free",
    .body = park_wakeup,
    .expect_violation = false,
    .preemption_bound = 2,
    .max_executions = 600000,
    .max_steps = 20000,
}};

const Register reg_pr8{Scenario{
    .name = "park_lost_wakeup_pr8",
    .description = "regression: the pre-fix park loop that arms once; the "
                   "checker must find the PR 8 lost-wakeup deadlock",
    .body = park_lost_wakeup_pr8,
    .expect_violation = true,
    .preemption_bound = 2,
    .max_executions = 600000,
    .max_steps = 20000,
}};

}  // namespace
}  // namespace hal::mc
