// Scenario: the Vyukov MPSC queue (common/mpsc_queue.hpp) under two
// concurrent producers and the single consumer.
//
// Checked properties:
//   * per-producer FIFO: the consumer never sees producer A's second
//     element before its first;
//   * no lost or duplicated element: everything pushed is popped exactly
//     once (consumer during the run + drain at the end);
//   * publication: each element's side payload (an mc::Cell written before
//     the push) is readable race-free after the pop — this is the edge the
//     push's release link-store and the pop's acquire load carry, and the
//     one the mpsc mutants sever;
//   * node handoff: producers storing into the previous node's `next` and
//     the consumer deleting popped nodes are both checked against the
//     node's construction/access clocks (init/destruction races).
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "mc/atomic.hpp"
#include "mc/explore.hpp"
#include "mc/sync.hpp"

namespace hal::mc {
namespace {

struct MpscState {
  MpscQueue<std::uint64_t, ModelAtomics> q;
  std::array<Cell<std::uint64_t>, 3> payload;
  // Written only by the consumer thread; read by the post-run hook.
  std::vector<std::uint64_t> received;
};

void mpsc_two_producers(Sim& sim) {
  auto st = std::make_shared<MpscState>();

  sim.thread([st] {  // producer A: two elements, FIFO-order bearing
    st->payload[0].set(100);
    st->q.push(0);
    st->payload[1].set(151);  // 100 + i * 51, matching the consumer check
    st->q.push(1);
  });
  sim.thread([st] {  // producer B: one element
    st->payload[2].set(202);
    st->q.push(2);
  });
  sim.thread([st] {  // consumer: bounded pop attempts
    for (int attempt = 0; attempt < 8 && st->received.size() < 3;
         ++attempt) {
      if (auto v = st->q.pop()) {
        MC_ASSERT(*v < 3, "mpsc: popped value out of range");
        MC_ASSERT(st->payload[*v].get() == 100 + *v * 51,
                  "mpsc: payload does not match its element");
        st->received.push_back(*v);
      }
    }
  });

  sim.finish([st] {
    // Drain what the bounded consumer left behind.
    std::vector<std::uint64_t> all = st->received;
    while (auto v = st->q.pop()) all.push_back(*v);
    MC_ASSERT(all.size() == 3, "mpsc: lost or duplicated element");
    std::array<int, 3> seen{};
    std::size_t pos0 = 0;
    std::size_t pos1 = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      MC_ASSERT(all[i] < 3, "mpsc: drained value out of range");
      seen[all[i]]++;
      if (all[i] == 0) pos0 = i;
      if (all[i] == 1) pos1 = i;
    }
    MC_ASSERT(seen[0] == 1 && seen[1] == 1 && seen[2] == 1,
              "mpsc: element popped zero or two times");
    MC_ASSERT(pos0 < pos1, "mpsc: per-producer FIFO broken (1 before 0)");
  });
}

const Register reg{Scenario{
    .name = "mpsc_two_producers",
    .description = "Vyukov MPSC queue: 2 producers / 1 consumer; FIFO per "
                   "producer, no lost element, race-free payload handoff",
    .body = mpsc_two_producers,
    .expect_violation = false,
    .preemption_bound = 2,
    .max_executions = 400000,
    .max_steps = 20000,
}};

}  // namespace
}  // namespace hal::mc
