// The mutation matrix: every memory order that hal-lint HL007 pins on the
// five protocol cores, downgraded one step and named with the scenario
// that must then report a violation. `hal-mc --mutants` runs each row and
// fails unless the downgraded order is actually caught — this is the
// "sufficient, not just unchanged" half of the memory-order story
// (docs/model-checking.md): HL007 proves the orders didn't drift, the
// matrix proves the checker would notice if they ever became too weak.
//
// Site keys: a mutation matches an access by exact op name, a substring
// of the enclosing function's signature, the basename of the file the
// call site lives in, and the original order. Keys use the "::name" form
// so e.g. "::arm" cannot match disarm() and "::pop" (mpsc_queue.hpp)
// cannot match pop_bottom() (ws_deque.hpp — different file).
#include "mc/explore.hpp"

namespace hal::mc {

const std::vector<MutantDef>& mutants() {
  static const std::vector<MutantDef> m = {
      // --- MPSC queue (mpsc_queue.hpp) --------------------------------
      {"mpsc_push_link_relaxed",
       {"mpsc_queue.hpp", "::push", "store", order::kRelease,
        order::kRelaxed},
       "mpsc_two_producers",
       "pop reads the node without the producer's payload write: data "
       "race on the element's Cell"},
      {"mpsc_push_swing_release",
       {"mpsc_queue.hpp", "::push", "exchange", order::kAcqRel,
        order::kRelease},
       "mpsc_two_producers",
       "producer B links into producer A's node without acquiring its "
       "construction: init race on the node's next cell"},
      {"mpsc_pop_next_relaxed",
       {"mpsc_queue.hpp", "::pop", "load", order::kAcquire,
        order::kRelaxed},
       "mpsc_two_producers",
       "consumer takes the element without the push's release edge: data "
       "race on the element's Cell"},
      // --- Chase-Lev deque (ws_deque.hpp) -----------------------------
      // Note: the deque's seq_cst-vs-seq_cst store-buffering orders
      // (pop_bottom's bottom store, steal_top's top/bottom loads) are NOT
      // in this table. Their counterexample (Le et al.'s C11 Chase-Lev
      // bug) needs an sc access ordered in S before an earlier-executed sc
      // access, and the checker approximates S as the execution order —
      // see "Documented strengthenings" in docs/model-checking.md.
      {"ws_push_bottom_publish_relaxed",
       {"ws_deque.hpp", "::push_bottom", "store", order::kRelease,
        order::kRelaxed},
       "ws_deque_publish",
       "the thief sees the new bottom without the buffer/payload writes: "
       "data race on the item's Cell"},
      // --- termination detector (termination.hpp) ---------------------
      // Note: note_sent()/note_handled()/activate() downgrades are NOT in
      // this table. Under the usage contract each is re-protected by a
      // genuine release/acquire chain (every send and handle precedes the
      // participant's next seq_cst deactivate, whose release the scan
      // acquires; every activation precedes the handle the balancing
      // counter read acquires), so no contract-following scenario can
      // observe them — and their residual necessity is SB-class, outside
      // the model's S approximation (docs/model-checking.md).
      {"term_deactivate_relaxed",
       {"termination.hpp", "::deactivate", "fetch_sub", order::kSeqCst,
        order::kRelaxed},
       "termination_deferred",
       "going idle no longer releases the participant's final writes: the "
       "quiescence declarer's teardown read races with the idle flush"},
      {"term_scan_relaxed",
       {"termination.hpp", "::all_idle", "load", order::kSeqCst,
        order::kRelaxed},
       "termination_deferred",
       "the scan reads the idle shard without acquiring the deactivate: "
       "the declarer's teardown read races with the idle flush"},
      // --- run-token cell (run_token.hpp) -----------------------------
      {"token_begin_quantum_release",
       {"run_token.hpp", "::begin_quantum", "exchange", order::kSeqCst,
        order::kRelease},
       "run_token_exclusive",
       "the new runner starts its quantum without acquiring the previous "
       "owner's retire: data race on the node's plain state"},
      {"token_retire_acquire",
       {"run_token.hpp", "::retire_or_requeue", "compare_exchange_strong",
        order::kSeqCst, order::kAcquire},
       "run_token_exclusive",
       "the retiring runner's quantum writes are not released through the "
       "cell: the next owner races on the node's plain state"},
      // --- park handshake (park_handshake.hpp) ------------------------
      {"park_claim_wake_relaxed",
       {"park_handshake.hpp", "::claim_wake", "exchange", order::kSeqCst,
        order::kRelaxed},
       "park_wakeup",
       "the producer's claim no longer publishes its push through the "
       "flag chain: the consumer re-arms, still sees empty, parks "
       "forever (lost wakeup deadlock)"},
      {"park_arm_release",
       {"park_handshake.hpp", "::arm", "exchange", order::kSeqCst,
        order::kRelease},
       "park_wakeup",
       "arm loses its acquire half: the consumer's predicate misses the "
       "pushed unit behind the producer's claim and parks forever"},
  };
  return m;
}

}  // namespace hal::mc
