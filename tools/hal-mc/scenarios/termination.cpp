// Scenario: the double-scan quiescence detector (common/termination.hpp).
//
// Two participants exchange a request / reply / follow-up / done chain
// through Vyukov MPSC mailboxes, following the detector's usage contract:
// note_sent() before the push, note_handled() after the handler, and
// activate()/deactivate() around every busy period. Participant 0 holds an
// external work token across the first round trip, so check()'s `extra`
// probe is exercised too.
//
// Checked properties:
//   * a kQuiescent verdict is never premature: once any participant sees
//     it, no unit may be handled afterwards (asserted in the handler
//     against a seq_cst flag), and at the end of the execution
//     sent == handled with the token count at zero;
//   * kStalled never fires here — the token is always released while its
//     holder is active, so a stable snapshot with tokens outstanding would
//     be a detector bug;
//   * conservation: handled never exceeds sent.
//
// The detector's correctness proof leans on the seq_cst total order S of
// the epoch bumps and shard scans (termination.hpp header). Under the
// checker's S-as-execution-order approximation the counters always read
// current once seq_cst, so the matching mutants attack the OTHER half of
// those orders: the release/acquire edges that make quiescence an
// ownership transfer. Downgrading deactivate() (release half) or the
// shard scan (acquire half) leaves the verdict's values intact but breaks
// the happens-before to the idle participant's plain state — caught as a
// data race on the declarer's teardown reads.
#include <array>
#include <cstdint>
#include <memory>

#include "common/termination.hpp"
#include "mc/atomic.hpp"
#include "mc/explore.hpp"
#include "mc/sync.hpp"

#include "common/mpsc_queue.hpp"

namespace hal::mc {
namespace {

constexpr std::uint64_t kReq = 1;    // p0 -> p1, opens the conversation
constexpr std::uint64_t kReply = 2;  // p1 -> p0, releases p0's token
constexpr std::uint64_t kReq2 = 3;   // p0 -> p1, follow-up round
constexpr std::uint64_t kDone = 4;   // p1 -> p0, deferred local send

struct TermState {
  using Det = BasicTerminationDetector<ModelAtomics>;
  Det det{2};
  std::array<MpscQueue<std::uint64_t, ModelAtomics>, 2> q;
  Atomic<std::uint64_t> tokens{0};    ///< external work tokens (check extra)
  Atomic<std::uint64_t> quiesced{0};  ///< set once kQuiescent is declared
  // Plain per-participant state. A participant writes its own cells; the
  // thread that declares kQuiescent reads everyone's (the "teardown" read
  // below) — race-free only through the detector's release/acquire edges.
  std::array<Cell<std::uint64_t>, 2> handled_count;
  std::array<Cell<std::uint64_t>, 2> idle_stats;
  // Single-writer records, read by the post-run hook.
  std::array<bool, 2> quiescent_seen{};
};

void participant(const std::shared_ptr<TermState>& st, std::uint32_t who) {
  using Verdict = TermState::Det::Verdict;
  auto& inbox = st->q[who];
  auto& outbox = st->q[who ^ 1u];
  bool active = true;  // constructed active
  bool got_req2 = false;
  bool sent_done = false;
  for (int poll = 0; poll < 4; ++poll) {
    if (!active) {
      // A participant only wakes because a unit was published to it.
      if (inbox.empty()) continue;
      st->det.activate(who);
      active = true;
    }
    while (auto u = inbox.pop()) {
      MC_ASSERT(st->quiesced.load() == 0,
                "termination: unit handled after quiescence was declared");
      if (*u == kReq) {
        st->det.note_sent();
        outbox.push(kReply);
      } else if (*u == kReply) {
        st->tokens.fetch_sub(1, std::memory_order_relaxed);
        st->det.note_sent();
        outbox.push(kReq2);
      } else if (*u == kReq2) {
        got_req2 = true;
      }  // kDone: nothing to do
      st->handled_count[who].set(st->handled_count[who].get() + 1);
      st->det.note_handled();
    }
    if (got_req2 && !sent_done) {
      // Deferred local work: an active participant may send spontaneously
      // after its last note_handled — exactly the window the shard scan
      // (not the counters) has to catch.
      sent_done = true;
      st->det.note_sent();
      outbox.push(kDone);
    }
    // Flush plain bookkeeping before going idle: deactivate()'s release
    // half is what publishes it to whichever thread declares quiescence.
    st->idle_stats[who].set(st->handled_count[who].get());
    st->det.deactivate(who);
    active = false;
    const Verdict v = st->det.check([st] {
      return st->tokens.load(std::memory_order_relaxed);
    });
    MC_ASSERT(v != Verdict::kStalled,
              "termination: kStalled verdict with no real token deadlock");
    if (v == Verdict::kQuiescent) {
      st->quiesced.store(1);
      // Quiescence transfers ownership of every participant's plain state
      // to the declaring thread (exactly what executor teardown relies
      // on). These reads are race-free only through note_handled's and
      // deactivate's release halves and the shard scan's acquire half —
      // the edges the termination mutants downgrade.
      const std::uint64_t done =
          st->handled_count[0].get() + st->handled_count[1].get();
      const std::uint64_t flushed =
          st->idle_stats[0].get() + st->idle_stats[1].get();
      MC_ASSERT(done == st->det.handled(),
                "termination: declared-quiescent handled counts disagree");
      MC_ASSERT(flushed == done,
                "termination: a participant went idle without flushing");
      st->quiescent_seen[who] = true;
      return;
    }
  }
}

void termination_quiescence(Sim& sim) {
  auto st = std::make_shared<TermState>();

  sim.thread([st] {  // participant 0: opens with kReq, holds a token
    st->tokens.fetch_add(1, std::memory_order_relaxed);
    st->det.note_sent();
    st->q[1].push(kReq);
    participant(st, 0);
  });
  sim.thread([st] { participant(st, 1); });

  sim.finish([st] {
    MC_ASSERT(st->det.handled() <= st->det.sent(),
              "termination: conservation violated (handled > sent)");
    if (st->quiescent_seen[0] || st->quiescent_seen[1]) {
      MC_ASSERT(st->det.sent() == st->det.handled(),
                "termination: quiescence declared with a unit in flight");
      MC_ASSERT(st->tokens.load(std::memory_order_relaxed) == 0,
                "termination: quiescence declared with tokens outstanding");
    }
  });
}

// Minimal deferred-send scenario: p0 publishes a single kReq2 directly,
// and p1 answers with a deferred kDone after its last note_handled(), so
// p1's final plain writes (idle_stats flush) are published to the eventual
// declarer p0 ONLY via deactivate()'s release acquired by the shard scan —
// the inbox pop covers p1's history just up to the kDone push. This is the
// scenario the deactivate()/all_idle() mutants run against.
void termination_deferred(Sim& sim) {
  auto st = std::make_shared<TermState>();

  sim.thread([st] {  // p0: hands p1 a unit that triggers a deferred send
    st->det.note_sent();
    st->q[1].push(kReq2);
    participant(st, 0);
  });
  sim.thread([st] { participant(st, 1); });

  sim.finish([st] {
    MC_ASSERT(st->det.handled() <= st->det.sent(),
              "termination: conservation violated (handled > sent)");
    if (st->quiescent_seen[0] || st->quiescent_seen[1]) {
      MC_ASSERT(st->det.sent() == st->det.handled(),
                "termination: quiescence declared with a unit in flight");
    }
  });
}

const Register reg_deferred{Scenario{
    .name = "termination_deferred",
    .description = "deferred-send window: a participant re-activates and "
                   "still owes a send while its counters are balanced; only "
                   "the shard scan can catch it",
    .body = termination_deferred,
    .expect_violation = false,
    .preemption_bound = 3,
    .max_executions = 600000,
    .max_steps = 20000,
}};

const Register reg{Scenario{
    .name = "termination_quiescence",
    .description = "double-scan quiescence detector: 2 participants, "
                   "request/reply rounds + a deferred send; kQuiescent is "
                   "never premature, kStalled never fires",
    .body = termination_quiescence,
    .expect_violation = false,
    // Bound 3 is the floor at which the full request/reply conversation —
    // and with it a genuine kQuiescent verdict — is reachable at all; at 2
    // the quiescence assertions would be vacuously green.
    .preemption_bound = 3,
    .max_executions = 600000,
    .max_steps = 20000,
}};

}  // namespace
}  // namespace hal::mc
