// Scenario: the run-token state machine (am/run_token.hpp) with inline
// runners — the thread that wins publish() executes the node's quantum
// itself, exactly like an MnMachine worker that popped the token.
//
// The mailbox is modeled by a bit-mask Atomic with release deposits and an
// acquire drain (the real MPSC queue carries its payloads the same way),
// so the WORK cells always ride the mailbox edge. The `quantum_log` Cell
// is different: it models the node's single-writer plain state (kernel,
// probes, buffer pool) that is read and written by every quantum and is
// handed between successive token owners ONLY through the cell's seq_cst
// RMW chain (run_token.hpp header). The run-token mutants sever exactly
// that chain — begin_quantum() losing its acquire half, retire losing its
// release half — and show up as a data race on quantum_log.
//
// Checked properties:
//   * exactly-one-runner: the runners counter is 0 at every quantum start;
//   * no lost unit: at the end every deposited bit was drained, the mask
//     is empty and the token is idle;
//   * race-free owner handoff of quantum_log.
#include <array>
#include <cstdint>
#include <memory>

#include "am/run_token.hpp"
#include "mc/atomic.hpp"
#include "mc/explore.hpp"
#include "mc/sync.hpp"

namespace hal::mc {
namespace {

struct TokenState {
  am::RunTokenCell<ModelAtomics> token;
  Atomic<std::uint64_t> mask{0};  ///< the node's mailbox, one bit per unit
  std::array<Cell<std::uint64_t>, 2> work;
  Cell<std::uint64_t> quantum_log{0};  ///< runner-only plain state
  Atomic<std::uint64_t> runners{0};
  Atomic<std::uint64_t> processed{0};
};

void run_node(const std::shared_ptr<TokenState>& st) {
  MC_ASSERT(st->runners.fetch_add(1, std::memory_order_relaxed) == 0,
            "run_token: two quanta running concurrently");
  st->token.begin_quantum();
  for (;;) {
    // Single-writer state handed over by the token cell's RMW chain.
    st->quantum_log.set(st->quantum_log.get() + 1);
    for (std::uint64_t m =
             st->mask.exchange(0, std::memory_order_acq_rel);
         m != 0; m = st->mask.exchange(0, std::memory_order_acq_rel)) {
      if ((m & 1) != 0) {
        MC_ASSERT(st->work[0].get() == 10, "run_token: unit 0 payload lost");
        st->processed.fetch_add(1, std::memory_order_relaxed);
      }
      if ((m & 2) != 0) {
        MC_ASSERT(st->work[1].get() == 20, "run_token: unit 1 payload lost");
        st->processed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    st->runners.fetch_sub(1, std::memory_order_relaxed);
    if (!st->token.retire_or_requeue()) return;  // node went idle
    // A sender flagged new work mid-quantum: the token is back to kQueued
    // and this worker runs the next quantum itself.
    MC_ASSERT(st->runners.fetch_add(1, std::memory_order_relaxed) == 0,
              "run_token: two quanta running concurrently (requeue)");
    st->token.begin_quantum();
  }
}

void run_token_exclusive(Sim& sim) {
  auto st = std::make_shared<TokenState>();

  sim.thread([st] {  // sender 1: deposit unit 0, publish, maybe run
    st->work[0].set(10);
    st->mask.fetch_add(1, std::memory_order_release);
    if (st->token.publish()) run_node(st);
  });
  sim.thread([st] {  // sender 2: deposit unit 1, publish, maybe run
    st->work[1].set(20);
    st->mask.fetch_add(2, std::memory_order_release);
    if (st->token.publish()) run_node(st);
  });

  sim.finish([st] {
    MC_ASSERT(st->mask.load() == 0,
              "run_token: unit stranded in an unscheduled mailbox");
    MC_ASSERT(st->token.idle(), "run_token: token leaked (not idle)");
    MC_ASSERT(st->processed.load() == 2,
              "run_token: deposited unit never processed");
    MC_ASSERT(st->runners.load() == 0, "run_token: runner count leaked");
  });
}

const Register reg{Scenario{
    .name = "run_token_exclusive",
    .description = "run-token cell: 2 senders with inline runners; exactly "
                   "one quantum at a time, no stranded unit, race-free "
                   "owner handoff of plain node state",
    .body = run_token_exclusive,
    .expect_violation = false,
    .preemption_bound = 3,
    .max_executions = 600000,
    .max_steps = 20000,
}};

}  // namespace
}  // namespace hal::mc
