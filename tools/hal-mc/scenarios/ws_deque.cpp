// Scenarios: the Chase–Lev work-stealing deque (common/ws_deque.hpp).
//
// ws_deque_publish — push_bottom / steal_top publication: a thief that
// takes an item must see the buffer slot and the item's side payload
// race-free (the push's release store of bottom_ carries both).
//
// ws_deque_owner_vs_thief — the pop_bottom / steal_top exclusion: owner
// pops its two items while a thief steals; every item is taken exactly
// once. This is the seq_cst store-buffering argument (pop_bottom's
// bottom_.store(seq_cst) vs steal_top's loads): downgrading either side
// lets the owner and the thief both take the same item.
#include <array>
#include <cstdint>
#include <memory>

#include "common/ws_deque.hpp"
#include "mc/atomic.hpp"
#include "mc/explore.hpp"
#include "mc/sync.hpp"

namespace hal::mc {
namespace {

struct WsState {
  WsDeque<std::uint64_t, ModelAtomics> d{8};  // tiny power-of-two buffer
  std::array<std::uint64_t, 2> items{7, 9};
  std::array<Cell<std::uint64_t>, 2> payload;
  // Single-writer records, read by the post-run hook.
  std::uint64_t* thief_got = nullptr;
  std::array<std::uint64_t*, 2> owner_got{};
};

void ws_deque_publish(Sim& sim) {
  auto st = std::make_shared<WsState>();

  sim.thread([st] {  // owner: publish one item
    st->payload[0].set(70);
    st->d.push_bottom(&st->items[0]);
  });
  sim.thread([st] {  // thief: one steal attempt
    std::uint64_t* p = st->d.steal_top();
    if (p != nullptr) {
      MC_ASSERT(p == &st->items[0], "ws_deque: stole an unknown item");
      MC_ASSERT(*p == 7, "ws_deque: stolen item not initialized");
      MC_ASSERT(st->payload[0].get() == 70,
                "ws_deque: stolen item's payload unreadable");
    }
    st->thief_got = p;
  });

  sim.finish([st] {
    std::uint64_t* rest = st->d.pop_bottom();
    const int taken = (st->thief_got != nullptr ? 1 : 0) +
                      (rest != nullptr ? 1 : 0);
    MC_ASSERT(taken == 1, "ws_deque: pushed item lost or duplicated");
    MC_ASSERT(st->d.pop_bottom() == nullptr, "ws_deque: phantom item");
  });
}

void ws_deque_owner_vs_thief(Sim& sim) {
  auto st = std::make_shared<WsState>();

  sim.thread([st] {  // owner: push two, then pop both back
    st->payload[0].set(70);
    st->d.push_bottom(&st->items[0]);
    st->payload[1].set(90);
    st->d.push_bottom(&st->items[1]);
    st->owner_got[0] = st->d.pop_bottom();
    st->owner_got[1] = st->d.pop_bottom();
  });
  sim.thread([st] {  // thief: one steal attempt
    std::uint64_t* p = st->d.steal_top();
    if (p != nullptr) {
      MC_ASSERT(st->payload[p == &st->items[0] ? 0 : 1].get() ==
                    (p == &st->items[0] ? 70 : 90),
                "ws_deque: stolen item's payload unreadable");
    }
    st->thief_got = p;
  });

  sim.finish([st] {
    std::array<int, 2> taken{};
    const auto count = [&](std::uint64_t* p) {
      if (p == nullptr) return;
      MC_ASSERT(p == &st->items[0] || p == &st->items[1],
                "ws_deque: took an unknown item");
      taken[p == &st->items[0] ? 0 : 1]++;
    };
    count(st->thief_got);
    count(st->owner_got[0]);
    count(st->owner_got[1]);
    while (std::uint64_t* p = st->d.pop_bottom()) count(p);
    MC_ASSERT(taken[0] == 1, "ws_deque: item 0 lost or taken twice");
    MC_ASSERT(taken[1] == 1, "ws_deque: item 1 lost or taken twice");
  });
}

const Register reg_publish{Scenario{
    .name = "ws_deque_publish",
    .description = "Chase-Lev deque: push_bottom publication to a "
                   "concurrent thief (release bottom_ store)",
    .body = ws_deque_publish,
    .expect_violation = false,
    .preemption_bound = 3,
    .max_executions = 400000,
    .max_steps = 20000,
}};

const Register reg_owner_thief{Scenario{
    .name = "ws_deque_owner_vs_thief",
    .description = "Chase-Lev deque: owner pop_bottom vs thief steal_top "
                   "seq_cst exclusion; each item taken exactly once",
    .body = ws_deque_owner_vs_thief,
    .expect_violation = false,
    .preemption_bound = 3,
    .max_executions = 600000,
    .max_steps = 20000,
}};

}  // namespace
}  // namespace hal::mc
