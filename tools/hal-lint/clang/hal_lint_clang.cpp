// hal-lint-clang: LibTooling front end for hal-lint's declarative checks.
//
// This restates the AST-shaped subset of the hal-lint contracts over a
// real Clang AST (build with -DHAL_LINT_WITH_CLANG=ON and a Clang dev
// kit; see tools/hal-lint/CMakeLists.txt). The flow-sensitive checks
// (HL001 handler purity, HL002 buffer lifecycle) live in the portable
// engine, which CI runs unconditionally — this front end adds
// type-accurate coverage for:
//
//   HL003 hal-actor-state-escape  lambdas passed to Context::request /
//                                 Kernel::make_join capturing `this` or
//                                 by reference
//   HL004 hal-wire-hygiene        reinterpret_cast and sizeof(padded
//                                 wire struct) inside memcpy calls
//   HL005 hal-capability-coverage fields of NodeAffinityGuard-owning
//                                 records without a guarded_by attribute
//
// Diagnostic format matches the portable engine so fixture expectations
// can be shared: `path:line:col: warning: message [check]`.
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

namespace {

using namespace clang;
using namespace clang::ast_matchers;

llvm::cl::OptionCategory gCategory("hal-lint-clang options");

void emit(const SourceManager& sm, SourceLocation loc,
          llvm::StringRef message, llvm::StringRef check) {
  if (loc.isInvalid()) return;
  const PresumedLoc p = sm.getPresumedLoc(loc);
  if (p.isInvalid()) return;
  llvm::outs() << p.getFilename() << ":" << p.getLine() << ":"
               << p.getColumn() << ": warning: " << message << " ["
               << check << "]\n";
}

class EscapeCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* lambda = result.Nodes.getNodeAs<LambdaExpr>("lambda");
    if (lambda == nullptr) return;
    for (const LambdaCapture& cap : lambda->captures()) {
      if (cap.capturesThis()) {
        emit(*result.SourceManager, lambda->getBeginLoc(),
             "continuation captures 'this'; the actor may migrate before "
             "it runs — capture ctx.self() by value",
             "hal-actor-state-escape");
      } else if (cap.getCaptureKind() == LCK_ByRef) {
        emit(*result.SourceManager, lambda->getBeginLoc(),
             "continuation captures by reference; the frame is gone when "
             "the reply arrives — capture by value",
             "hal-actor-state-escape");
      }
    }
  }
};

class WireCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    if (const auto* cast =
            result.Nodes.getNodeAs<CXXReinterpretCastExpr>("reinterpret")) {
      emit(*result.SourceManager, cast->getBeginLoc(),
           "reinterpret_cast in the wire layer; encode through the "
           "word-wise message codec",
           "hal-wire-hygiene");
    }
    if (const auto* size =
            result.Nodes.getNodeAs<UnaryExprOrTypeTraitExpr>("sizeofArg")) {
      emit(*result.SourceManager, size->getBeginLoc(),
           "sizeof(padded wire struct) inside memcpy serialises host "
           "layout; use the word-wise encoder",
           "hal-wire-hygiene");
    }
  }
};

class CapabilityCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* field = result.Nodes.getNodeAs<FieldDecl>("field");
    if (field == nullptr) return;
    if (field->hasAttr<GuardedByAttr>()) return;
    if (field->getType().isConstQualified() ||
        field->getType()->isReferenceType()) {
      return;
    }
    const std::string type = field->getType().getAsString();
    if (type.find("NodeAffinityGuard") != std::string::npos) return;
    emit(*result.SourceManager, field->getLocation(),
         ("mutable member '" + field->getNameAsString() +
          "' of a NodeAffinityGuard-owning class lacks HAL_GUARDED_BY")
             .c_str(),
         "hal-capability-coverage");
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto options =
      tooling::CommonOptionsParser::create(argc, argv, gCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError());
    return 2;
  }
  tooling::ClangTool tool(options->getCompilations(),
                          options->getSourcePathList());

  MatchFinder finder;
  EscapeCallback escape;
  WireCallback wire;
  CapabilityCallback capability;

  // HL003: lambdas in argument position of request()/make_join().
  finder.addMatcher(
      lambdaExpr(hasAncestor(callExpr(callee(functionDecl(
                     anyOf(hasName("request"), hasName("make_join")))))))
          .bind("lambda"),
      &escape);

  // HL004: reinterpret_cast, and sizeof(wire struct) inside memcpy.
  finder.addMatcher(cxxReinterpretCastExpr().bind("reinterpret"), &wire);
  finder.addMatcher(
      callExpr(callee(functionDecl(hasName("memcpy"))),
               hasDescendant(unaryExprOrTypeTraitExpr(
                                 ofKind(UETT_SizeOf),
                                 hasArgumentOfType(hasDeclaration(
                                     recordDecl(hasAnyName(
                                         "Packet", "Message", "MailAddress",
                                         "ContRef", "GroupInfo")))))
                                 .bind("sizeofArg"))),
      &wire);

  // HL005: fields of records that own a NodeAffinityGuard member.
  finder.addMatcher(
      fieldDecl(hasParent(cxxRecordDecl(has(fieldDecl(hasType(
                    cxxRecordDecl(hasName("NodeAffinityGuard"))))))))
          .bind("field"),
      &capability);

  return tool.run(tooling::newFrontendActionFactory(&finder).get());
}
