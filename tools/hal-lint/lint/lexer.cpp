// Lexer for hal-lint: C++ tokens, comments, and HAL_LINT_SUPPRESS parsing.
#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

#include "lint/core.hpp"

namespace hal::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest first so longest-match wins.
constexpr std::array<std::string_view, 36> kPuncts = {
    "<<=", ">>=", "...", "->*", "<=>",                     //
    "::",  "->",  "++",  "--",  "<<", ">>", "<=", ">=",    //
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=",    //
    "%=",  "&=",  "|=",  "^=",  ".*",                      //
    "(",   ")",   "{",   "}",   "[",  "]",  ";",  ",",     //
    ".",   "<"};

}  // namespace

std::unique_ptr<SourceFile> SourceFile::load(std::string path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(std::move(path), std::move(buf).str());
}

std::unique_ptr<SourceFile> SourceFile::from_string(std::string path,
                                                    std::string contents) {
  auto f = std::unique_ptr<SourceFile>(new SourceFile());
  f->path_ = std::move(path);
  f->contents_ = std::move(contents);
  f->lex();
  f->parse_suppressions();
  return f;
}

void SourceFile::lex() {
  const std::string& s = contents_;
  const std::size_t n = s.size();
  std::size_t i = 0;
  std::uint32_t line = 1;
  std::uint32_t line_start = 0;  // byte offset of current line start
  bool line_has_token = false;

  auto col = [&](std::size_t pos) {
    return static_cast<std::uint32_t>(pos - line_start + 1);
  };
  auto newline = [&](std::size_t pos) {
    ++line;
    line_start = static_cast<std::uint32_t>(pos + 1);
    line_has_token = false;
  };
  auto push = [&](Tok kind, std::size_t begin, std::size_t end) {
    tokens_.push_back(Token{kind,
                            std::string_view(s).substr(begin, end - begin),
                            line, col(begin)});
    line_has_token = true;
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      newline(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow to end of line (honouring \-splices).
    // Directives carry no contract content hal-lint inspects.
    if (c == '#' && !line_has_token) {
      while (i < n && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          newline(i + 1);
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const std::size_t begin = i + 2;
      const bool own = !line_has_token;
      const std::uint32_t cl = line;
      const std::uint32_t cc = col(i);
      while (i < n && s[i] != '\n') ++i;
      comments_.push_back(Comment{
          std::string_view(s).substr(begin, i - begin), cl, cc, own});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const std::size_t begin = i + 2;
      const bool own = !line_has_token;
      const std::uint32_t cl = line;
      const std::uint32_t cc = col(i);
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') newline(i);
        ++i;
      }
      const std::size_t end = std::min(i, n);
      i = std::min(i + 2, n);
      comments_.push_back(Comment{
          std::string_view(s).substr(begin, end - begin), cl, cc, own});
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      const std::size_t begin = i;
      std::size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      std::string closer;
      closer.push_back(')');
      closer.append(s, i + 2, d - (i + 2));
      closer.push_back('"');
      std::size_t end = s.find(closer, d);
      end = (end == std::string::npos) ? n : end + closer.size();
      for (std::size_t k = begin; k < end; ++k) {
        if (s[k] == '\n') newline(k);
      }
      push(Tok::String, begin, end);
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const std::size_t begin = i;
      ++i;
      while (i < n && s[i] != c) {
        if (s[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      i = std::min(i + 1, n);
      push(c == '"' ? Tok::String : Tok::Char, begin, i);
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0)) {
      const std::size_t begin = i;
      ++i;
      while (i < n) {
        const char d = s[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > begin &&
                   (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                    s[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      push(Tok::Number, begin, i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < n && ident_char(s[i])) ++i;
      push(Tok::Identifier, begin, i);
      continue;
    }
    // Punctuator, longest match.
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (s.compare(i, p.size(), p) == 0) {
        len = p.size();
        break;
      }
    }
    push(Tok::Punct, i, i + len);
    i += len;
  }
}

void SourceFile::parse_suppressions() {
  constexpr std::string_view kMarker = "HAL_LINT_SUPPRESS";
  for (const Comment& cm : comments_) {
    const std::size_t at = cm.text.find(kMarker);
    if (at == std::string_view::npos) continue;
    std::string_view rest = cm.text.substr(at + kMarker.size());
    // Only `HAL_LINT_SUPPRESS(...)` and `HAL_LINT_SUPPRESS: ...` are
    // directives; a prose mention of the marker (docs, this file) is not.
    if (rest.empty() || (rest.front() != '(' && rest.front() != ':')) {
      continue;
    }
    Suppression sup;
    sup.line = cm.line;
    // Check list: (a, b, ...). A missing list means "*".
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      std::string_view list =
          rest.substr(1, close == std::string_view::npos ? rest.size() - 1
                                                         : close - 1);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string_view::npos) comma = list.size();
        std::string_view item = list.substr(pos, comma - pos);
        while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
        while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
        if (!item.empty()) sup.checks.emplace_back(item);
        pos = comma + 1;
      }
      rest = close == std::string_view::npos ? std::string_view{}
                                             : rest.substr(close + 1);
    } else {
      sup.checks.emplace_back("*");
    }
    // Reason: ": <non-empty text>".
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      std::string_view reason = rest.substr(colon + 1);
      sup.has_reason =
          std::any_of(reason.begin(), reason.end(), [](char ch) {
            return std::isspace(static_cast<unsigned char>(ch)) == 0;
          });
    }
    // Placement: same line, or (own-line comment) the next tokenful line.
    sup.applies_to = cm.line;
    if (cm.own_line) {
      const auto it = std::find_if(
          tokens_.begin(), tokens_.end(),
          [&](const Token& t) { return t.line > cm.line; });
      if (it != tokens_.end()) sup.applies_to = it->line;
    }
    suppressions_.push_back(std::move(sup));
  }
}

bool SourceFile::is_suppressed(std::string_view check, std::uint32_t line) {
  bool hit = false;
  for (Suppression& sup : suppressions_) {
    if (sup.applies_to != line && sup.line != line) continue;
    for (const std::string& c : sup.checks) {
      if (c == "*" || c == check) {
        sup.used = true;
        hit = true;
      }
    }
  }
  return hit;
}

}  // namespace hal::lint
