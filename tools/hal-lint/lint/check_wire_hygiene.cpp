// HL004 hal-wire-hygiene.
//
// Contract: HAL's wire format is the word-wise encoder in
// src/runtime/message.hpp / src/am/packet.hpp — never the in-memory
// layout of a struct. Structs like Packet, Message, MailAddress and
// ContRef carry padding and host-order fields; memcpying or
// reinterpret_casting them onto the wire bakes the host ABI into the
// protocol and breaks the moment two node binaries disagree. Payload
// sizes must be named (sizeof or a constant), not magic numbers.
//
// Rules, applied to wire-layer files (src/am/*, message/arg codec,
// node_manager):
//   1. reinterpret_cast is banned (suppress with a reason where a raw
//      byte view is the contract, e.g. console text payloads);
//   2. memcpy size arguments must not contain bare integer literals
//      outside sizeof(...);
//   3. sizeof(<padded wire struct>) must not appear in a memcpy.
#include <array>

#include "lint/checks.hpp"

namespace hal::lint {
namespace {

using tokq::match;

constexpr std::array<std::string_view, 8> kPaddedWireStructs = {
    "Packet",  "Message",          "MailAddress", "ContRef",
    "GroupInfo", "JoinContinuation", "LocalityDescriptor", "WorkToken"};

bool wire_scope(const std::string& path) {
  if (path.find("/am/") != std::string::npos ||
      path.rfind("am/", 0) == 0) {
    return true;
  }
  for (const std::string_view name :
       {"message.hpp", "arg_codec.hpp", "node_manager.cpp",
        "node_manager.hpp", "packet.hpp"}) {
    if (path.size() >= name.size() &&
        path.compare(path.size() - name.size(), name.size(), name) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void run_wire_hygiene(CheckContext& ctx) {
  for (const auto& file : ctx.model().files()) {
    if (!wire_scope(file->path())) continue;
    const std::vector<Token>& t = file->tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::Identifier) continue;

      if (t[i].text == "reinterpret_cast") {
        ctx.report(*file, t[i].line, t[i].col, "hal-wire-hygiene",
                   "reinterpret_cast in the wire layer; encode through "
                   "the word-wise message codec or suppress with the "
                   "contract that makes the raw view sound");
        continue;
      }

      if (t[i].text != "memcpy" && t[i].text != "memmove") continue;
      if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
      const std::size_t open = i + 1;
      const std::size_t close = match(t, open, t.size());

      // Split the argument list at top-level commas.
      std::vector<std::pair<std::size_t, std::size_t>> args;
      std::size_t arg_begin = open + 1;
      for (std::size_t j = open + 1; j < close; ++j) {
        const std::string_view x = t[j].text;
        if (x == "(" || x == "[" || x == "{") {
          j = match(t, j, close);
          continue;
        }
        if (x == ",") {
          args.emplace_back(arg_begin, j);
          arg_begin = j + 1;
        }
      }
      args.emplace_back(arg_begin, close);

      // Rule 3: sizeof on a padded wire struct anywhere in the call.
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (t[j].text != "sizeof" || t[j + 1].text != "(") continue;
        const std::size_t send = match(t, j + 1, close);
        for (std::size_t k = j + 2; k < send; ++k) {
          for (const std::string_view ws : kPaddedWireStructs) {
            if (t[k].text == ws) {
              ctx.report(*file, t[k].line, t[k].col, "hal-wire-hygiene",
                         "sizeof(" + std::string(ws) +
                             ") inside memcpy serialises a padded struct; "
                             "use the word-wise encoder");
            }
          }
        }
      }

      // Rule 2: the size argument (3rd) must not use bare numerals.
      if (args.size() >= 3) {
        const auto [sb, se] = args[2];
        for (std::size_t j = sb; j < se; ++j) {
          if (t[j].text == "sizeof" && j + 1 < se &&
              t[j + 1].text == "(") {
            j = match(t, j + 1, se);
            continue;
          }
          if (t[j].kind == Tok::Number) {
            ctx.report(*file, t[j].line, t[j].col, "hal-wire-hygiene",
                       "magic number '" + std::string(t[j].text) +
                           "' as a memcpy payload size; name it (sizeof "
                           "or a k-constant)");
          }
        }
      }
    }
  }
}

}  // namespace hal::lint
