// Structural model extracted from lexed sources: classes with their data
// members, function definitions with their call sites and lambdas, and a
// bare-name call index used for reachability closures.
//
// Extraction is deliberately an over-approximation in the directions that
// keep the checks sound for HAL's style: a call site resolves to every
// scanned function with the same bare name, and constructs the parser does
// not recognise are skipped rather than guessed at.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lint/core.hpp"

namespace hal::lint {

struct CallSite {
  std::string_view callee;  ///< bare name ("sleep_for", "run", "memcpy")
  std::string qual;   ///< receiver text just before it ("std::", "machine_.")
  std::size_t tok = 0;     ///< token index of the callee identifier
  std::size_t lparen = 0;  ///< token index of the call's '('
  std::uint32_t line = 0;
  std::uint32_t col = 0;
};

struct LambdaSite {
  std::size_t intro_tok = 0;  ///< token index of the '['
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  bool captures_this = false;
  bool captures_by_ref = false;      ///< [&] or [&x]
  std::string enclosing_callee;      ///< call the lambda is an argument of
};

struct FunctionDecl {
  std::string name;        ///< bare name
  std::string qualified;   ///< "Class::name" when the class is known
  std::string class_name;  ///< enclosing / out-of-line class, "" if free
  SourceFile* file = nullptr;
  std::uint32_t line = 0;
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  std::vector<CallSite> calls;
  std::vector<LambdaSite> lambdas;
};

struct MemberVar {
  std::string name;
  std::string type_text;  ///< tokens before the name, space-joined
  std::uint32_t line = 0;
  bool is_static = false;
  bool is_constexpr = false;
  bool is_const = false;
  bool is_reference = false;
  bool guarded = false;  ///< carries HAL_GUARDED_BY / HAL_PT_GUARDED_BY
  bool park_flag = false;      ///< carries HAL_PARK_FLAG (HL006)
  bool epoch_counted = false;  ///< carries HAL_EPOCH_COUNTED (HL009)
};

struct ClassDecl {
  std::string name;
  SourceFile* file = nullptr;
  std::uint32_t line = 0;   ///< line of the class head
  std::string bases;        ///< raw base-clause text, "" if none
  std::vector<MemberVar> members;
  std::string protocol;  ///< HAL_MEMORY_PROTOCOL("...") marker, "" if none
  std::uint32_t protocol_line = 0;   ///< line of the marker macro
  bool has_behavior_macro = false;   ///< body contains HAL_BEHAVIOR(
  bool owns_affinity_guard = false;  ///< has a NodeAffinityGuard member
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

class Model {
 public:
  /// Takes ownership of `file` and extracts its declarations.
  void add_file(std::unique_ptr<SourceFile> file);

  const std::vector<std::unique_ptr<SourceFile>>& files() const {
    return files_;
  }
  const std::vector<FunctionDecl>& functions() const { return functions_; }
  const std::vector<ClassDecl>& classes() const { return classes_; }

  /// Indices into functions() for every definition with this bare name.
  const std::vector<std::size_t>& functions_named(
      std::string_view name) const;

  const ClassDecl* find_class(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<SourceFile>> files_;
  std::vector<FunctionDecl> functions_;
  std::vector<ClassDecl> classes_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name_;
};

/// Token-range helpers shared by checks.
namespace tokq {

/// Index of the matching closer for the opener at `i`, or `end` if
/// unbalanced. Openers: ( { [.
std::size_t match(const std::vector<Token>& t, std::size_t i,
                  std::size_t end);

/// If `i` is an identifier followed by optional template args and then
/// '(', returns the index of that '('; otherwise 0.
std::size_t call_lparen(const std::vector<Token>& t, std::size_t i,
                        std::size_t end);

}  // namespace tokq

}  // namespace hal::lint
