// Shared token-level helpers for the whole-program protocol checks
// (HL006 park-loop, HL007 memory-order policy, HL009 epoch conservation):
// receiver-member resolution for atomic call sites, memory_order argument
// parsing, and structural ranges (loops, conditions) recovered from the
// token stream.
#pragma once

#include <string_view>
#include <vector>

#include "lint/model.hpp"

namespace hal::lint::proto {

/// Name of the object a member call is invoked on: walks back from the
/// callee token over one `.`/`->` and a balanced `[...]` subscript, so
/// `rec.sleeping.exchange` -> "sleeping", `mailboxes_[dst]->push` ->
/// "mailboxes_", `sleepers_.fetch_add` -> "sleepers_". Returns "" when the
/// receiver is not such a chain (free call, `(*p).f`, ...).
inline std::string_view receiver_object(const std::vector<Token>& t,
                                        std::size_t callee_tok) {
  if (callee_tok < 2) return {};
  std::size_t j = callee_tok - 1;
  const std::string_view sep = t[j].text;
  if (t[j].kind != Tok::Punct || (sep != "." && sep != "->")) return {};
  --j;
  if (t[j].text == "]") {
    // Subscripted receiver: hop over the balanced brackets.
    int depth = 0;
    while (j > 0) {
      if (t[j].text == "]") ++depth;
      if (t[j].text == "[" && --depth == 0) break;
      --j;
    }
    if (j == 0) return {};
    --j;
  }
  return t[j].kind == Tok::Identifier ? t[j].text : std::string_view{};
}

/// The callee names of std::atomic member operations the policy checks
/// reason about.
inline bool is_atomic_op(std::string_view callee) {
  return callee == "load" || callee == "store" || callee == "exchange" ||
         callee == "fetch_add" || callee == "fetch_sub" ||
         callee == "fetch_or" || callee == "fetch_and" ||
         callee == "fetch_xor" || callee == "compare_exchange_weak" ||
         callee == "compare_exchange_strong";
}

/// Explicit memory_order arguments inside a call's parens, in argument
/// order ("seq_cst", "relaxed", ...). Recognises both the
/// `std::memory_order_x` constants and the C++20 `std::memory_order::x`
/// spelling. Empty means the call uses the defaulted order (seq_cst).
inline std::vector<std::string_view> order_args(const std::vector<Token>& t,
                                                std::size_t lparen,
                                                std::size_t end) {
  std::vector<std::string_view> out;
  if (lparen == 0) return out;
  const std::size_t close = tokq::match(t, lparen, end);
  for (std::size_t j = lparen + 1; j < close; ++j) {
    if (t[j].kind != Tok::Identifier) continue;
    const std::string_view x = t[j].text;
    constexpr std::string_view kPrefix = "memory_order_";
    if (x.size() > kPrefix.size() && x.substr(0, kPrefix.size()) == kPrefix) {
      out.push_back(x.substr(kPrefix.size()));
    } else if (x == "memory_order" && j + 2 < close &&
               t[j + 1].text == "::") {
      out.push_back(t[j + 2].text);
      j += 2;
    }
  }
  return out;
}

/// A braced loop body inside a function, `[body_begin, body_end]` being the
/// token indices of its `{` / `}`.
struct LoopRange {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// All braced `for` / `while` / `do` bodies in `fn`, in source order.
/// Single-statement loop bodies are not recovered (they cannot hold a
/// wait-plus-re-arm sequence anyway).
inline std::vector<LoopRange> braced_loops(const std::vector<Token>& t,
                                           const FunctionDecl& fn) {
  std::vector<LoopRange> out;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (t[i].kind != Tok::Identifier) continue;
    const std::string_view x = t[i].text;
    std::size_t open = 0;
    if ((x == "for" || x == "while") && i + 1 < fn.body_end &&
        t[i + 1].text == "(") {
      const std::size_t close = tokq::match(t, i + 1, fn.body_end);
      if (close + 1 < fn.body_end && t[close + 1].text == "{") {
        open = close + 1;
      }
    } else if (x == "do" && i + 1 < fn.body_end && t[i + 1].text == "{") {
      open = i + 1;
    }
    if (open != 0) {
      out.push_back(LoopRange{open, tokq::match(t, open, fn.body_end)});
    }
  }
  return out;
}

/// Innermost loop of `loops` whose body contains `tok`, or nullptr.
inline const LoopRange* innermost_loop(const std::vector<LoopRange>& loops,
                                       std::size_t tok) {
  const LoopRange* best = nullptr;
  for (const LoopRange& l : loops) {
    if (l.body_begin < tok && tok < l.body_end) {
      if (best == nullptr || l.body_begin > best->body_begin) best = &l;
    }
  }
  return best;
}

/// Token ranges `(lparen, rparen)` of every `if` / `while` condition in
/// `fn` — the positions where a load feeds a control decision.
inline std::vector<LoopRange> condition_ranges(const std::vector<Token>& t,
                                               const FunctionDecl& fn) {
  std::vector<LoopRange> out;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (t[i].kind != Tok::Identifier) continue;
    if (t[i].text != "if" && t[i].text != "while") continue;
    std::size_t j = i + 1;
    if (j < fn.body_end && t[j].text == "constexpr") ++j;
    if (j < fn.body_end && t[j].text == "(") {
      out.push_back(LoopRange{j, tokq::match(t, j, fn.body_end)});
    }
  }
  return out;
}

/// Number of top-level (depth-1) arguments of the call whose '(' is at
/// `lparen`; 0 for an empty argument list.
inline std::size_t count_args(const std::vector<Token>& t, std::size_t lparen,
                              std::size_t end) {
  const std::size_t close = tokq::match(t, lparen, end);
  if (close == lparen + 1) return 0;
  std::size_t count = 1;
  int depth = 0;
  for (std::size_t j = lparen + 1; j < close; ++j) {
    const std::string_view x = t[j].text;
    if (t[j].kind != Tok::Punct) continue;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (x == "," && depth == 0) ++count;
  }
  return count;
}

}  // namespace hal::lint::proto
