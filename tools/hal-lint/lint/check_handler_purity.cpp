// HL001 hal-handler-purity.
//
// Contract: active-message handlers run to completion on the receiving
// node's execution stream with the network logically paused (the CMAM
// discipline the paper's message layer builds on). Every function
// reachable from an AM handler root must therefore avoid
//   - blocking primitives (sleeps, waits, mutexes, futures),
//   - global operator new (make_unique/make_shared/new; the fast path is
//     allocation-free at the margin, enforced by bench/msgpath_alloc),
//   - std::function construction (type-erased callables heap-allocate;
//     use hal::InlineFunction), and
//   - re-entering the executor (Machine::run from inside a handler).
//
// Roots are `handle` overrides of classes deriving from am::NodeClient.
// Reachability is a bare-name call closure over the scanned sources: a
// call resolves to every scanned function with the same bare name, which
// over-approximates in favour of finding violations. The closure stops at
// the transport boundary (ThreadMachine / SimMachine own their internal
// synchronisation), at baseline/ comparators and the lang/ interpreter
// (sanctioned slow paths), and does not traverse names too generic to
// resolve (kCommonVocabulary below).
//
// A HAL_LINT_SUPPRESS(hal-handler-purity) on a function's definition line
// exempts that function AND stops the closure there; the reason string
// must say why the subtree is sound.
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "lint/checks.hpp"

namespace hal::lint {
namespace {

bool in_set(std::string_view x, std::initializer_list<std::string_view> s) {
  for (const std::string_view v : s) {
    if (x == v) return true;
  }
  return false;
}

bool path_contains(const FunctionDecl& fn, std::string_view needle) {
  return fn.file->path().find(needle) != std::string::npos;
}

bool boundary_function(const FunctionDecl& fn) {
  if (in_set(fn.class_name,
             {"ThreadMachine", "SimMachine", "MnMachine", "NodeExecutor"})) {
    return true;
  }
  // baseline/ comparators are measured against HAL, not part of it;
  // lang/ is the toy-language front end — parsing and evaluation happen
  // before the program is handed to the kernel, never inside a handler.
  return path_contains(fn, "baseline/") || path_contains(fn, "baseline\\") ||
         path_contains(fn, "lang/") || path_contains(fn, "lang\\");
}

// Bare names too generic to resolve through: `size()` in a handler is a
// container query, not FrontEnd::size; traversing these drags unrelated
// classes into the closure and every finding becomes noise. Violations
// INSIDE such functions are still caught when a specific-named caller
// pulls their class in via another edge.
const std::initializer_list<std::string_view> kCommonVocabulary = {
    "size", "empty", "get",  "load",  "store", "data",  "begin", "end",
    "count", "clear", "fail", "reset", "value", "front", "back",  "at"};

const std::initializer_list<std::string_view> kBlockingCalls = {
    "sleep_for", "sleep_until", "wait_for", "wait_until",
    "get_future", "async"};

const std::initializer_list<std::string_view> kBlockingTypes = {
    "mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
    "condition_variable", "condition_variable_any", "lock_guard",
    "unique_lock", "scoped_lock", "shared_lock", "promise"};

std::string chain_to(const std::vector<FunctionDecl>& fns,
                     const std::unordered_map<std::size_t, std::size_t>& par,
                     std::size_t idx) {
  std::vector<std::string> names;
  std::size_t cur = idx;
  for (int hop = 0; hop < 6; ++hop) {
    names.push_back(fns[cur].qualified);
    const auto it = par.find(cur);
    if (it == par.end() || it->second == cur) break;
    cur = it->second;
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += *it;
  }
  return out;
}

}  // namespace

void run_handler_purity(CheckContext& ctx) {
  const Model& model = ctx.model();
  const std::vector<FunctionDecl>& fns = model.functions();

  // Roots: `handle` overrides of NodeClient-derived classes.
  std::deque<std::size_t> queue;
  std::unordered_set<std::size_t> reached;
  std::unordered_map<std::size_t, std::size_t> parent;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].name != "handle") continue;
    const ClassDecl* cls = model.find_class(fns[i].class_name);
    if (cls == nullptr ||
        cls->bases.find("NodeClient") == std::string::npos) {
      continue;
    }
    queue.push_back(i);
    reached.insert(i);
    parent.emplace(i, i);
  }

  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop_front();
    FunctionDecl const& fn = fns[i];
    SourceFile& file = *fn.file;
    if (file.is_suppressed("hal-handler-purity", fn.line)) {
      continue;  // exempt subtree; the suppression's reason documents it
    }

    // Direct violations in this function's body.
    for (const CallSite& c : fn.calls) {
      if (c.callee == "new" && c.qual != "placement") {
        ctx.report(file, c.line, c.col, "hal-handler-purity",
                   "operator new on the AM handler path (" +
                       chain_to(fns, parent, i) +
                       "); handlers must be allocation-free at the margin");
        continue;
      }
      if (in_set(c.callee, {"make_unique", "make_shared"})) {
        ctx.report(file, c.line, c.col, "hal-handler-purity",
                   std::string(c.callee) + " on the AM handler path (" +
                       chain_to(fns, parent, i) +
                       "); handlers must be allocation-free at the margin");
        continue;
      }
      if (in_set(c.callee, kBlockingCalls)) {
        ctx.report(file, c.line, c.col, "hal-handler-purity",
                   "blocking primitive '" + std::string(c.callee) +
                       "' on the AM handler path (" +
                       chain_to(fns, parent, i) + ")");
        continue;
      }
      if (c.callee == "run" &&
          (c.qual.find("machine") != std::string::npos ||
           c.qual.find("Machine") != std::string::npos)) {
        ctx.report(file, c.line, c.col, "hal-handler-purity",
                   "re-enters the active-message executor (Machine::run) "
                   "from a handler (" +
                       chain_to(fns, parent, i) + ")");
        continue;
      }
    }

    // Token-level violations: blocking types and std::function.
    const std::vector<Token>& t = file.tokens();
    for (std::size_t j = fn.body_begin + 1;
         j + 0 < fn.body_end && j < t.size(); ++j) {
      if (t[j].kind != Tok::Identifier) continue;
      const bool std_qualified =
          j >= 2 && t[j - 1].text == "::" && t[j - 2].text == "std";
      if (in_set(t[j].text, kBlockingTypes) && std_qualified) {
        ctx.report(file, t[j].line, t[j].col, "hal-handler-purity",
                   "blocking synchronisation type 'std::" +
                       std::string(t[j].text) +
                       "' on the AM handler path (" +
                       chain_to(fns, parent, i) + ")");
      }
      if (t[j].text == "function" && std_qualified &&
          j + 1 < fn.body_end && t[j + 1].text == "<") {
        ctx.report(file, t[j].line, t[j].col, "hal-handler-purity",
                   "std::function constructed on the AM handler path (" +
                       chain_to(fns, parent, i) +
                       "); use hal::InlineFunction");
      }
    }

    // Expand the closure.
    for (const CallSite& c : fn.calls) {
      if (c.qual.rfind("std::", 0) == 0) continue;  // std:: not traversed
      if (in_set(c.callee, kCommonVocabulary)) continue;
      for (const std::size_t next : model.functions_named(c.callee)) {
        if (reached.contains(next)) continue;
        if (boundary_function(fns[next])) continue;
        reached.insert(next);
        parent.emplace(next, i);
        queue.push_back(next);
      }
    }
  }
}

}  // namespace hal::lint
