// HL002 hal-buffer-lifecycle.
//
// Contract: a pooled payload buffer obtained from BufferPool::acquire /
// reserve is owned by exactly one party at a time and must reach exactly
// one consumer — release() back to the pool, being shipped inside a
// packet, or adoption into a message — on EVERY control-flow path. The
// recycling discipline (sender acquires, receiver retires) is what makes
// the small-message fast path allocation-free; a branch that forgets its
// buffer turns into a slow leak, and a double-move is a logic error (the
// second consumer silently receives an empty buffer).
//
// Mechanism: per function, LOCALS initialised or assigned from a
// `...pool...acquire(` / `...pool...reserve(` call are tracked through a
// structured statement tree (if/else, loops, switch, return). The
// abstract value is a set over three concrete states —
//   E  empty        default-constructed or already shipped elsewhere
//   O  owned        holds a pooled buffer that must be retired
//   C  consumed     std::move()d away on this path
// — joined by set union at control-flow merges. `std::move(v)` of an E
// buffer is legal (moving an empty Bytes is a no-op), which is exactly
// the `Bytes b; if (...) b = pool.acquire(...); use(std::move(b));`
// idiom the receive path uses. Only member fields keep their buffers
// across calls, so fields are deliberately NOT tracked.
#include <algorithm>
#include <set>
#include <string>

#include "lint/checks.hpp"

namespace hal::lint {
namespace {

using tokq::match;

struct Stmt {
  enum Kind { Seq, If, Loop, Switch, Return, Simple } kind = Simple;
  std::vector<Stmt> children;
  std::size_t begin = 0, end = 0;  // token range of cond / simple stmt
  bool has_else = false;
  bool has_default = false;
  std::uint32_t line = 0;
};

struct Parser {
  const std::vector<Token>& t;

  Stmt parse_block(std::size_t begin, std::size_t end) {
    Stmt seq;
    seq.kind = Stmt::Seq;
    std::size_t i = begin;
    while (i < end) {
      auto [stmt, next] = parse_stmt(i, end);
      seq.children.push_back(std::move(stmt));
      i = next > i ? next : i + 1;
    }
    return seq;
  }

  std::pair<Stmt, std::size_t> parse_stmt(std::size_t i, std::size_t end) {
    Stmt s;
    s.line = t[i].line;
    const std::string_view x = t[i].text;
    if (x == "{") {
      const std::size_t close = match(t, i, end);
      s = parse_block(i + 1, close);
      s.line = t[i].line;
      return {std::move(s), close + 1};
    }
    if (x == "if") {
      s.kind = Stmt::If;
      std::size_t j = i + 1;
      if (j < end && t[j].text == "constexpr") ++j;
      std::size_t after_cond = j;
      if (j < end && t[j].text == "(") {
        const std::size_t close = match(t, j, end);
        s.begin = j + 1;
        s.end = close;
        after_cond = close + 1;
      }
      auto [then, next] = parse_stmt(after_cond, end);
      s.children.push_back(std::move(then));
      if (next < end && t[next].text == "else") {
        auto [els, next2] = parse_stmt(next + 1, end);
        s.children.push_back(std::move(els));
        s.has_else = true;
        next = next2;
      }
      return {std::move(s), next};
    }
    if (x == "while" || x == "for") {
      s.kind = Stmt::Loop;
      std::size_t j = i + 1;
      std::size_t after_cond = j;
      if (j < end && t[j].text == "(") {
        const std::size_t close = match(t, j, end);
        s.begin = j + 1;
        s.end = close;
        after_cond = close + 1;
      }
      auto [body, next] = parse_stmt(after_cond, end);
      s.children.push_back(std::move(body));
      return {std::move(s), next};
    }
    if (x == "do") {
      s.kind = Stmt::Loop;
      auto [body, next] = parse_stmt(i + 1, end);
      s.children.push_back(std::move(body));
      // Trailing `while (...);`
      if (next < end && t[next].text == "while") {
        std::size_t j = next + 1;
        if (j < end && t[j].text == "(") j = match(t, j, end) + 1;
        if (j < end && t[j].text == ";") ++j;
        next = j;
      }
      return {std::move(s), next};
    }
    if (x == "switch") {
      s.kind = Stmt::Switch;
      std::size_t j = i + 1;
      if (j < end && t[j].text == "(") {
        const std::size_t close = match(t, j, end);
        s.begin = j + 1;
        s.end = close;
        j = close + 1;
      }
      if (j < end && t[j].text == "{") {
        const std::size_t close = match(t, j, end);
        parse_switch_arms(s, j + 1, close);
        j = close + 1;
      }
      return {std::move(s), j};
    }
    if (x == "return") {
      s.kind = Stmt::Return;
      s.begin = i;
      s.end = skip_simple(i, end);
      return {std::move(s), s.end + 1};
    }
    if (x == "case" || x == "default") {
      // Reached only when arms are parsed as plain statements; skip label.
      std::size_t j = i;
      while (j < end && t[j].text != ":") ++j;
      s.kind = Stmt::Simple;
      s.begin = s.end = j;
      return {std::move(s), j + 1};
    }
    s.kind = Stmt::Simple;
    s.begin = i;
    s.end = skip_simple(i, end);
    return {std::move(s), s.end + 1};
  }

  void parse_switch_arms(Stmt& sw, std::size_t begin, std::size_t end) {
    // Split the switch body on top-level case/default labels; each arm is
    // a Seq. Fallthrough is approximated: arms are alternatives.
    std::size_t i = begin;
    std::size_t arm_start = end;
    auto flush = [&](std::size_t upto) {
      if (arm_start < upto) {
        sw.children.push_back(parse_block(arm_start, upto));
      }
    };
    while (i < end) {
      const std::string_view x = t[i].text;
      if (x == "case" || x == "default") {
        flush(i);
        if (x == "default") sw.has_default = true;
        while (i < end && t[i].text != ":") ++i;
        ++i;
        arm_start = i;
        continue;
      }
      if (x == "(" || x == "[" || x == "{") {
        i = match(t, i, end) + 1;
        continue;
      }
      ++i;
    }
    flush(end);
  }

  /// End (index of ';') of a simple statement starting at i.
  std::size_t skip_simple(std::size_t i, std::size_t end) {
    std::size_t j = i;
    while (j < end) {
      const std::string_view x = t[j].text;
      if (x == ";") return j;
      if (x == "(" || x == "[" || x == "{") {
        j = match(t, j, end) + 1;
        continue;
      }
      if (x == "}") return j;
      ++j;
    }
    return end;
  }
};

// --- abstract interpretation over one tracked variable ---------------------

// Set of possible concrete states, joined by union at merges.
using Mask = std::uint8_t;
constexpr Mask kEmpty = 1;     // default-constructed / never acquired here
constexpr Mask kOwned = 2;     // holds a pooled buffer needing retirement
constexpr Mask kConsumed = 4;  // std::move()d away on this path

struct Interp {
  CheckContext& ctx;
  SourceFile& file;
  const std::vector<Token>& t;
  std::string_view var;
  std::string fn_name;
  std::set<std::pair<std::uint32_t, std::string>> reported;

  void report(std::uint32_t line, std::uint32_t col, std::string msg) {
    if (reported.emplace(line, msg).second) {
      ctx.report(file, line, col, "hal-buffer-lifecycle", std::move(msg));
    }
  }

  /// True if [begin, end) re-initialises `var` from a pool acquire.
  bool is_acquire(std::size_t begin, std::size_t end) const {
    for (std::size_t j = begin; j + 1 < end; ++j) {
      if (t[j].text == var && t[j + 1].text == "=" &&
          (j == begin || (t[j - 1].text != "." && t[j - 1].text != "->"))) {
        for (std::size_t k = j + 2; k < end; ++k) {
          if ((t[k].text == "acquire" || t[k].text == "reserve") &&
              k + 1 < end && t[k + 1].text == "(") {
            return true;
          }
        }
      }
    }
    return false;
  }

  struct Flow {
    Mask mask = kEmpty;
    bool terminated = false;
  };

  Flow run_events(std::size_t begin, std::size_t end, Flow in) {
    if (in.terminated) return in;
    Flow f = in;
    for (std::size_t j = begin; j < end; ++j) {
      // Consume: std::move(var) — `move ( var )`. Moving an Empty buffer
      // is a legal no-op; only a (possibly) already-moved one is flagged.
      if (t[j].text == "move" && j + 3 < end && t[j + 1].text == "(" &&
          t[j + 2].text == var && t[j + 3].text == ")") {
        if (f.mask == kConsumed) {
          report(t[j].line, t[j].col,
                 "pooled buffer '" + std::string(var) +
                     "' is moved again after it was already consumed; the "
                     "second consumer receives an empty buffer");
        } else if ((f.mask & kConsumed) != 0) {
          report(t[j].line, t[j].col,
                 "pooled buffer '" + std::string(var) +
                     "' may already have been consumed on another path");
        }
        f.mask = kConsumed;
        j += 3;
        continue;
      }
      // Re-acquire: var = ...acquire/reserve(...)
      if (t[j].text == var && j + 1 < t.size() && t[j + 1].text == "=" &&
          (j == begin ||
           (t[j - 1].text != "." && t[j - 1].text != "->"))) {
        if (is_acquire(j, end)) {
          if (f.mask == kOwned) {
            report(t[j].line, t[j].col,
                   "pooled buffer '" + std::string(var) +
                       "' re-acquired while still owned; the old buffer "
                       "leaks");
          } else if ((f.mask & kOwned) != 0) {
            report(t[j].line, t[j].col,
                   "pooled buffer '" + std::string(var) +
                       "' re-acquired but may still be owned on another "
                       "path");
          }
          f.mask = kOwned;
        }
      }
    }
    return f;
  }

  Flow eval(const Stmt& s, Flow in) {
    if (in.terminated) return in;
    switch (s.kind) {
      case Stmt::Seq: {
        Flow f = in;
        for (const Stmt& c : s.children) {
          f = eval(c, f);
          if (f.terminated) break;
        }
        return f;
      }
      case Stmt::Simple:
        return run_events(s.begin, s.end, in);
      case Stmt::Return: {
        Flow f = run_events(s.begin, s.end, in);
        // `return var;` transfers ownership out (NRVO move).
        bool returns_var = false;
        for (std::size_t j = s.begin + 1; j < s.end; ++j) {
          if (t[j].text == var) returns_var = true;
        }
        if (returns_var) f.mask = kConsumed;
        if (f.mask == kOwned) {
          report(t[s.begin].line, t[s.begin].col,
                 "pooled buffer '" + std::string(var) +
                     "' is still owned at this return; every acquire must "
                     "reach exactly one release/ship/adopt");
        } else if ((f.mask & kOwned) != 0) {
          report(t[s.begin].line, t[s.begin].col,
                 "pooled buffer '" + std::string(var) +
                     "' is retired on only some paths reaching this "
                     "return");
        }
        f.terminated = true;
        return f;
      }
      case Stmt::If: {
        Flow pre = run_events(s.begin, s.end, in);
        const Flow a = eval(s.children[0], pre);
        const Flow b = s.has_else && s.children.size() > 1
                           ? eval(s.children[1], pre)
                           : pre;
        if (a.terminated && b.terminated) return {kEmpty, true};
        if (a.terminated) return b;
        if (b.terminated) return a;
        return {static_cast<Mask>(a.mask | b.mask), false};
      }
      case Stmt::Loop: {
        Flow pre = run_events(s.begin, s.end, in);
        const Flow once = eval(s.children[0], pre);
        Flow widened{
            static_cast<Mask>(pre.mask |
                              (once.terminated ? 0 : once.mask)),
            false};
        const Flow again = eval(s.children[0], widened);  // re-check
        (void)again;
        return widened;
      }
      case Stmt::Switch: {
        Flow pre = run_events(s.begin, s.end, in);
        if (s.children.empty()) return pre;
        Mask acc = s.has_default ? 0 : pre.mask;
        bool any_live = !s.has_default;
        for (const Stmt& arm : s.children) {
          const Flow f = eval(arm, pre);
          if (f.terminated) continue;
          any_live = true;
          acc = static_cast<Mask>(acc | f.mask);
        }
        if (!any_live) return {kEmpty, true};
        return {acc, false};
      }
    }
    return in;
  }
};

// Names of locals declared inside [begin, end): any `Type name` pair
// followed by `;`, `=`, `{` or `(`. Fields assigned in the body never
// match (their declaration lives at class scope), which is what keeps
// `payload = pool->acquire(...)` in Message::decode_body untracked.
std::vector<std::string_view> local_decls(const std::vector<Token>& t,
                                          std::size_t begin,
                                          std::size_t end) {
  static const std::set<std::string_view> kNotATypeName = {
      "return", "co_return", "goto",  "break",  "continue", "new",
      "delete", "throw",     "case",  "using",  "typedef",  "else",
      "do",     "operator",  "const", "static", "constexpr"};
  std::vector<std::string_view> out;
  for (std::size_t j = begin; j + 2 < end; ++j) {
    if (t[j].kind != Tok::Identifier || t[j + 1].kind != Tok::Identifier) {
      continue;
    }
    if (kNotATypeName.contains(t[j].text)) continue;
    const std::string_view after = t[j + 2].text;
    if (after != ";" && after != "=" && after != "{") continue;
    if (j > begin &&
        (t[j - 1].text == "." || t[j - 1].text == "->" ||
         t[j - 1].text == "::")) {
      continue;
    }
    out.push_back(t[j + 1].text);
  }
  return out;
}

}  // namespace

void run_buffer_lifecycle(CheckContext& ctx) {
  for (const FunctionDecl& fn : ctx.mutable_model().functions()) {
    SourceFile& file = *fn.file;
    const std::vector<Token>& t = file.tokens();
    if (fn.body_begin + 1 >= fn.body_end || fn.body_end > t.size()) {
      continue;
    }

    const std::vector<std::string_view> locals =
        local_decls(t, fn.body_begin + 1, fn.body_end);

    // Discover tracked locals: `<name> = ...pool...acquire|reserve(...)`
    // where the receiver mentions a pool and <name> is a body-scope local.
    std::vector<std::string_view> vars;
    for (const CallSite& c : fn.calls) {
      if (c.callee != "acquire" && c.callee != "reserve") continue;
      if (c.qual.find("pool") == std::string::npos &&
          c.qual.find("Pool") == std::string::npos) {
        continue;
      }
      // Walk back to `ident =` at the start of the statement.
      std::size_t j = c.tok;
      while (j > fn.body_begin && t[j].text != ";" && t[j].text != "{" &&
             t[j].text != "}") {
        --j;
      }
      for (std::size_t k = j; k + 1 < c.tok; ++k) {
        if (t[k].kind == Tok::Identifier && t[k + 1].text == "=" &&
            (k == 0 || (t[k - 1].text != "." && t[k - 1].text != "->"))) {
          const bool is_local =
              std::find(locals.begin(), locals.end(), t[k].text) !=
              locals.end();
          if (is_local && std::find(vars.begin(), vars.end(), t[k].text) ==
                              vars.end()) {
            vars.push_back(t[k].text);
          }
          break;
        }
      }
    }
    if (vars.empty()) continue;

    Parser parser{t};
    const Stmt body = parser.parse_block(fn.body_begin + 1, fn.body_end);
    for (const std::string_view v : vars) {
      Interp interp{ctx, file, t, v, fn.qualified, {}};
      Interp::Flow start;
      // The declaration itself is the first acquire; run_events finds it.
      const Interp::Flow out = interp.eval(body, start);
      if (!out.terminated) {
        const std::uint32_t end_line = t[fn.body_end].line;
        if (out.mask == kOwned) {
          interp.report(end_line, t[fn.body_end].col,
                        "pooled buffer '" + std::string(v) +
                            "' is still owned when '" + fn.qualified +
                            "' falls off the end; it must be released, "
                            "shipped, or adopted");
        } else if ((out.mask & kOwned) != 0) {
          interp.report(end_line, t[fn.body_end].col,
                        "pooled buffer '" + std::string(v) +
                            "' is retired on only some paths through '" +
                            fn.qualified + "'");
        }
      }
    }
  }
}

}  // namespace hal::lint
