// Minimal SARIF 2.1.0 emitter so CI can feed hal-lint findings into
// GitHub code scanning (`--sarif out.json`). Only the subset the
// code-scanning ingester requires: tool.driver with the rule table, and
// one result per diagnostic with a physical location.
#pragma once

#include <string>
#include <vector>

#include "lint/core.hpp"

namespace hal::lint {

/// Serialize `diags` as a SARIF log. Returns the JSON text; never fails.
std::string sarif_text(const std::vector<Diagnostic>& diags);

/// Write sarif_text(diags) to `path`. False on I/O failure.
bool write_sarif(const std::string& path,
                 const std::vector<Diagnostic>& diags);

}  // namespace hal::lint
