// HL003 hal-actor-state-escape.
//
// Contract: actors are location-transparent — between two messages an
// actor may migrate to another node (§4 of the paper), at which point its
// C++ object is destroyed on the source node and rebuilt from its packed
// state on the destination. A join continuation or request callback built
// inside a behaviour method therefore must not capture `this` or capture
// by reference: the continuation outlives the current message and may run
// after the actor has moved, leaving the captured pointer dangling.
// Continuations must capture by value (the mail address via ctx.self(),
// plus whatever scalars they need) and read results from the JoinView.
//
// Scope: lambdas written inside methods of classes that declare
// HAL_BEHAVIOR(...), when passed to the escaping sinks `request` /
// `make_join` / `reply_to`.
#include "lint/checks.hpp"

namespace hal::lint {

void run_actor_escape(CheckContext& ctx) {
  const Model& model = ctx.model();
  for (const FunctionDecl& fn : model.functions()) {
    const ClassDecl* cls = model.find_class(fn.class_name);
    if (cls == nullptr || !cls->has_behavior_macro) continue;
    for (const LambdaSite& lam : fn.lambdas) {
      const bool escaping = lam.enclosing_callee == "request" ||
                            lam.enclosing_callee == "make_join" ||
                            lam.enclosing_callee == "reply_to";
      if (!escaping) continue;
      if (lam.captures_this) {
        ctx.report(*fn.file, lam.line, lam.col, "hal-actor-state-escape",
                   "continuation passed to " + lam.enclosing_callee +
                       "() captures 'this' inside behaviour method '" +
                       fn.qualified +
                       "'; the actor may migrate before the continuation "
                       "runs — capture ctx.self() and scalars by value");
      }
      if (lam.captures_by_ref) {
        ctx.report(*fn.file, lam.line, lam.col, "hal-actor-state-escape",
                   "continuation passed to " + lam.enclosing_callee +
                       "() captures by reference inside behaviour method "
                       "'" +
                       fn.qualified +
                       "'; the frame is gone when the reply arrives — "
                       "capture by value");
      }
    }
  }
}

}  // namespace hal::lint
