// HL007 hal-memory-order-policy: per-protocol-struct memory-order policy.
//
// Each lock-free protocol in the tree carries a HAL_MEMORY_PROTOCOL("name")
// marker binding the class to a policy table in this file. The table is the
// reviewed ordering contract: which member / atomic-op / function triples
// are allowed at which memory orders, which load-store pairs a function
// MUST contain (so deleting or downgrading the publication edge is caught
// even though the weaker order would still "parse"), and which relaxed
// loads feeding control decisions are deliberate advisory reads.
//
// Enforced per marked class:
//   * every atomic op on a listed member must match an allow rule — a
//     relaxed-ified fetch_add, an acquire'd CAS, or a downgraded store is a
//     policy breach, not a style choice;
//   * require rules assert the protocol's load-acquire/store-release (or
//     seq_cst) edges still exist in the named functions;
//   * explicitly-relaxed loads inside if/while conditions are flagged
//     unless the (member, function) pair is advisory-listed — advisory
//     reads may skip work, never skip correctness;
//   * atomic_thread_fence is rejected: these protocols encode ordering in
//     the access orders (TSan models them; it does not model fences), so a
//     fence is a silent divergence from the checked model;
//   * single_writer protocols (FrameBuilder deadlines) must stay free of
//     atomics — adding one papers over an execution-stream-affinity breach;
//   * drift is two-way: a marker naming an unknown policy and a policy
//     class that lost its marker are both errors.
#include <set>
#include <string>

#include "lint/checks.hpp"
#include "lint/protocol_util.hpp"

namespace hal::lint {

namespace {

constexpr const char* kId = "hal-memory-order-policy";

using Orders = std::vector<std::string_view>;

struct OpRule {
  std::string_view member;
  std::string_view op;
  std::string_view func;  ///< "" = any member function
  Orders orders;          ///< accepted (success) orders
};

struct ReqRule {
  std::string_view func;
  std::string_view member;
  std::string_view op;
  Orders orders;
};

struct Advisory {
  std::string_view member;
  std::string_view func;
};

struct Policy {
  std::string_view name;  ///< HAL_MEMORY_PROTOCOL argument
  std::string_view cls;   ///< class carrying the marker
  bool single_writer = false;
  std::vector<OpRule> allow;
  std::vector<ReqRule> require;
  std::vector<Advisory> advisory;
};

const std::vector<Policy>& policies() {
  static const std::vector<Policy> p = {
      // Vyukov MPSC: push publishes with head exchange (acq_rel) + next
      // store (release); consumers read next with acquire. size_ is a
      // relaxed statistic.
      {"mpsc_queue",
       "MpscQueue",
       false,
       {
           {"head_", "exchange", "push", {"acq_rel", "seq_cst"}},
           {"head_", "store", "MpscQueue", {"relaxed"}},
           {"next", "store", "push", {"release", "seq_cst"}},
           {"next", "load", "pop", {"acquire", "seq_cst"}},
           {"next", "load", "empty", {"acquire", "seq_cst"}},
           {"size_", "fetch_add", "", {"relaxed"}},
           {"size_", "fetch_sub", "", {"relaxed"}},
           {"size_", "load", "", {"relaxed", "acquire", "seq_cst"}},
       },
       {
           {"push", "head_", "exchange", {"acq_rel", "seq_cst"}},
           {"push", "next", "store", {"release", "seq_cst"}},
           {"pop", "next", "load", {"acquire", "seq_cst"}},
           {"empty", "next", "load", {"acquire", "seq_cst"}},
       },
       {}},
      // Chase-Lev deque, TSan-modeled variant: the classic fences are
      // expressed as seq_cst accesses; owner-side restores may relax.
      {"ws_deque",
       "WsDeque",
       false,
       {
           {"top_", "load", "", {"acquire", "seq_cst"}},
           {"top_", "compare_exchange_strong", "", {"seq_cst"}},
           {"bottom_", "load", "", {"relaxed", "acquire", "seq_cst"}},
           {"bottom_", "store", "", {"relaxed", "release", "seq_cst"}},
           {"buffer_", "load", "", {"relaxed"}},
           {"buffer_", "store", "", {"relaxed"}},
       },
       {
           {"push_bottom", "bottom_", "store", {"release", "seq_cst"}},
           {"push_bottom", "top_", "load", {"acquire", "seq_cst"}},
           {"pop_bottom", "bottom_", "store", {"seq_cst"}},
           {"pop_bottom", "top_", "load", {"seq_cst"}},
           {"pop_bottom", "top_", "compare_exchange_strong", {"seq_cst"}},
           {"steal_top", "top_", "load", {"seq_cst"}},
           {"steal_top", "bottom_", "load", {"seq_cst"}},
           {"steal_top", "top_", "compare_exchange_strong", {"seq_cst"}},
       },
       {}},
      // Termination epochs: the whole point is the seq_cst total order
      // between epoch bumps and the detector's reads; only the ctor's
      // pre-publication init may relax.
      {"termination_epochs",
       "BasicTerminationDetector",
       false,
       {
           {"sent_", "fetch_add", "", {"seq_cst"}},
           {"sent_", "load", "", {"seq_cst"}},
           {"handled_", "fetch_add", "", {"seq_cst"}},
           {"handled_", "load", "", {"seq_cst"}},
           {"active", "fetch_add", "BasicTerminationDetector", {"relaxed",
                                                                "seq_cst"}},
           {"active", "fetch_add", "activate", {"seq_cst"}},
           {"active", "fetch_sub", "deactivate", {"seq_cst"}},
           {"active", "load", "", {"seq_cst"}},
       },
       {
           {"note_sent", "sent_", "fetch_add", {"seq_cst"}},
           {"note_handled", "handled_", "fetch_add", {"seq_cst"}},
       },
       {}},
      // Run tokens (am/run_token.hpp): the per-node Idle/Queued/Running/
      // RunningNotified cell is an all-seq_cst CAS protocol — the RMWs carry
      // the happens-before chain between successive token owners.
      {"run_tokens",
       "RunTokenCell",
       false,
       {
           {"state_", "load", "", {"seq_cst"}},
           {"state_", "store", "", {"seq_cst"}},
           {"state_", "exchange", "", {"seq_cst"}},
           {"state_", "compare_exchange_weak", "", {"seq_cst"}},
           {"state_", "compare_exchange_strong", "", {"seq_cst"}},
       },
       {
           {"publish", "state_", "compare_exchange_weak", {"seq_cst"}},
           {"begin_quantum", "state_", "exchange", {"seq_cst"}},
           {"retire_or_requeue", "state_", "compare_exchange_strong",
            {"seq_cst"}},
       },
       {}},
      // 1:1 park handshake (am/park_handshake.hpp): the flag is ONLY ever
      // touched through seq_cst exchanges (the HL006 RMW chain), plus the
      // explicitly-advisory relaxed peek for thief wakes.
      {"park_handshake",
       "ParkHandshake",
       false,
       {
           {"flag_", "exchange", "", {"seq_cst"}},
           {"flag_", "load", "armed_hint", {"relaxed"}},
       },
       {
           {"arm", "flag_", "exchange", {"seq_cst"}},
           {"claim_wake", "flag_", "exchange", {"seq_cst"}},
           {"disarm", "flag_", "exchange", {"seq_cst"}},
       },
       {}},
      // M:N scheduler fabric (the run-token and park protocols now live in
      // their extracted cells above): the wake epoch is a seq_cst bump read
      // with acquire; sleeper/steal bookkeeping is relaxed-advisory.
      {"mn_scheduler",
       "MnMachine",
       false,
       {
           {"sleepers_", "fetch_add", "", {"relaxed"}},
           {"sleepers_", "fetch_sub", "", {"relaxed"}},
           {"sleepers_", "load", "maybe_wake_thief", {"relaxed"}},
           {"steals_", "fetch_add", "", {"relaxed"}},
           {"steals_", "load", "steals", {"relaxed"}},
           {"wake_epoch_", "fetch_add", "", {"seq_cst"}},
           {"wake_epoch_", "load", "", {"acquire", "seq_cst"}},
       },
       {
           {"wake_hook", "wake_epoch_", "fetch_add", {"seq_cst"}},
       },
       {
           {"sleepers_", "maybe_wake_thief"},
       }},
      // FrameBuilder deadlines: plain fields, safety by execution-stream
      // affinity. No atomics allowed at all.
      {"frame_deadlines", "FrameBuilder", true, {}, {}, {}},
  };
  return p;
}

const Policy* find_policy(std::string_view name) {
  for (const Policy& p : policies()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

bool order_in(std::string_view order, const Orders& allowed) {
  for (std::string_view o : allowed) {
    if (o == order) return true;
  }
  return false;
}

bool in_any_range(const std::vector<proto::LoopRange>& rs, std::size_t tok) {
  for (const proto::LoopRange& r : rs) {
    if (r.body_begin < tok && tok < r.body_end) return true;
  }
  return false;
}

bool advisory_exempt(const Policy& p, std::string_view member,
                     std::string_view func) {
  for (const Advisory& a : p.advisory) {
    if (a.member == member && a.func == func) return true;
  }
  return false;
}

std::string orders_text(const Orders& orders) {
  std::string out;
  for (std::string_view o : orders) {
    if (!out.empty()) out += "/";
    out += o;
  }
  return out;
}

}  // namespace

void run_memory_order(CheckContext& ctx) {
  const Model& model = ctx.model();

  // Two-way drift between markers and the policy table.
  for (const ClassDecl& c : model.classes()) {
    if (c.protocol.empty()) continue;
    const Policy* p = find_policy(c.protocol);
    if (p == nullptr) {
      ctx.report(*c.file, c.protocol_line, 1, kId,
                 "HAL_MEMORY_PROTOCOL(\"" + c.protocol +
                     "\") names no policy; add a table entry in "
                     "check_memory_order.cpp or fix the marker");
    } else if (p->cls != c.name) {
      ctx.report(*c.file, c.protocol_line, 1, kId,
                 "protocol '" + c.protocol + "' is the policy for class '" +
                     std::string(p->cls) + "', but the marker is on '" +
                     c.name + "'");
    }
  }
  for (const Policy& pol : policies()) {
    const ClassDecl* c = model.find_class(pol.cls);
    if (c != nullptr && c->protocol.empty()) {
      ctx.report(*c->file, c->line, 1, kId,
                 "class '" + std::string(pol.cls) +
                     "' implements checked protocol '" +
                     std::string(pol.name) +
                     "' but lost its HAL_MEMORY_PROTOCOL marker");
    }
  }

  for (const Policy& pol : policies()) {
    const ClassDecl* c = model.find_class(pol.cls);
    if (c == nullptr || c->protocol != pol.name) continue;

    if (pol.single_writer) {
      for (const MemberVar& m : c->members) {
        if (m.type_text.find("atomic") != std::string::npos) {
          ctx.report(*c->file, m.line, 1, kId,
                     "single-writer protocol '" + std::string(pol.name) +
                         "': member '" + m.name +
                         "' must not be atomic — safety comes from "
                         "execution-stream affinity, not ordering");
        }
      }
    }

    std::set<std::string_view> listed;
    for (const OpRule& r : pol.allow) listed.insert(r.member);

    for (const FunctionDecl& fn : model.functions()) {
      if (fn.class_name != pol.cls) continue;
      const std::vector<Token>& t = fn.file->tokens();
      const auto conds = proto::condition_ranges(t, fn);
      for (const CallSite& cs : fn.calls) {
        if (cs.callee == "atomic_thread_fence" ||
            cs.callee == "atomic_signal_fence") {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "fence in protocol '" + std::string(pol.name) +
                         "': this protocol encodes ordering in access "
                         "orders (TSan-modeled); fences silently diverge "
                         "from the checked model");
          continue;
        }
        if (!proto::is_atomic_op(cs.callee)) continue;
        const auto orders = proto::order_args(t, cs.lparen, fn.body_end);
        if (pol.single_writer) {
          if (!orders.empty()) {
            ctx.report(*fn.file, cs.line, cs.col, kId,
                       "single-writer protocol '" + std::string(pol.name) +
                           "' must not use memory orders; atomics here "
                           "paper over an execution-stream-affinity breach");
          }
          continue;
        }
        const std::string_view recv = proto::receiver_object(t, cs.tok);
        if (recv.empty() || listed.count(recv) == 0) continue;
        const std::string_view order =
            orders.empty() ? std::string_view("seq_cst") : orders[0];
        bool allowed = false;
        for (const OpRule& r : pol.allow) {
          if (r.member != recv || r.op != cs.callee) continue;
          if (!r.func.empty() && r.func != fn.name) continue;
          if (order_in(order, r.orders)) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "protocol '" + std::string(pol.name) + "': " +
                         std::string(recv) + "." + std::string(cs.callee) +
                         "(" + std::string(order) + ") in " + fn.name +
                         " matches no allow rule in the policy table");
        }
        if (cs.callee == "load" && !orders.empty() &&
            orders[0] == "relaxed" && in_any_range(conds, cs.tok) &&
            !advisory_exempt(pol, recv, fn.name)) {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "relaxed load of '" + std::string(recv) +
                         "' feeds a control decision in " + fn.name +
                         "; advisory reads must be allow-listed in the "
                         "policy table");
        }
      }
    }

    for (const ReqRule& r : pol.require) {
      for (const FunctionDecl& fn : model.functions()) {
        if (fn.class_name != pol.cls || fn.name != r.func) continue;
        const std::vector<Token>& t = fn.file->tokens();
        bool found = false;
        for (const CallSite& cs : fn.calls) {
          if (cs.callee != r.op) continue;
          if (proto::receiver_object(t, cs.tok) != r.member) continue;
          const auto orders = proto::order_args(t, cs.lparen, fn.body_end);
          const std::string_view order =
              orders.empty() ? std::string_view("seq_cst") : orders[0];
          if (order_in(order, r.orders)) {
            found = true;
            break;
          }
        }
        if (!found) {
          ctx.report(*fn.file, fn.line, 1, kId,
                     "protocol '" + std::string(pol.name) + "' requires " +
                         std::string(r.member) + "." + std::string(r.op) +
                         "(" + orders_text(r.orders) + ") in " + fn.name +
                         "; the ordering edge was deleted or downgraded");
        }
      }
    }
  }
}

}  // namespace hal::lint
