// HL009 hal-epoch-conservation: every path that makes a packet visible on
// an epoch-counted channel must bump the sent epoch first, and every path
// that takes one off must account for it.
//
// Termination detection (TerminationDetector, docs/termination.md) is a
// conservation law: `sent - handled == in flight`, with note_sent ordered
// BEFORE the packet becomes visible and note_handled AFTER it is fully
// processed. A single delivery path that forgets its bump — a retransmit
// arm, an ack fast-path, a frame decode loop — silently un-balances the
// books and quiescence is declared over live traffic (or never at all).
//
// Channels opt in with HAL_EPOCH_COUNTED on the member (MnMachine's
// local/inject queues, NodeExecutor's mailboxes). Per function the check
// resolves reference aliases (`MpscQueue<Packet>& q = *mailboxes_[n];`),
// then demands:
//
//   * push / push_bottom on a counted channel: a note_sent earlier in the
//     function, or an earlier take from a counted channel (a transfer
//     re-publishes an already-counted packet). A note_sent only AFTER the
//     push is its own bug shape: the packet is visible while the books
//     still balance, so a racing all_idle() misfires.
//   * pop / pop_bottom / steal_top: a later note_handled, a later
//     re-publish onto a counted channel, or the popped value escaping via
//     return (the caller owns the accounting, e.g. next_runnable handing
//     the slot to run_node).
#include <set>
#include <string>

#include "lint/checks.hpp"
#include "lint/protocol_util.hpp"

namespace hal::lint {

namespace {

constexpr const char* kId = "hal-epoch-conservation";

bool is_push_op(std::string_view callee) {
  return callee == "push" || callee == "push_bottom";
}

bool is_pop_op(std::string_view callee) {
  return callee == "pop" || callee == "pop_bottom" ||
         callee == "steal_top";
}

std::set<std::string, std::less<>> epoch_member_names(const Model& model) {
  std::set<std::string, std::less<>> out;
  for (const ClassDecl& c : model.classes()) {
    for (const MemberVar& m : c.members) {
      if (m.epoch_counted) out.insert(m.name);
    }
  }
  return out;
}

/// Start of the receiver chain of a member call: walks back from the
/// callee over `.`/`->`, subscripts and the receiver identifier, e.g. for
/// `mailboxes_[dst]->push` returns the index of `mailboxes_`.
std::size_t chain_start(const std::vector<Token>& t, std::size_t callee_tok) {
  std::size_t j = callee_tok;
  while (j >= 2 && (t[j - 1].text == "." || t[j - 1].text == "->")) {
    j -= 2;
    if (t[j].text == "]") {
      int depth = 0;
      while (j > 0) {
        if (t[j].text == "]") ++depth;
        if (t[j].text == "[" && --depth == 0) break;
        --j;
      }
      if (j > 0) --j;
    }
  }
  return j;
}

}  // namespace

void run_epoch_conservation(CheckContext& ctx) {
  const Model& model = ctx.model();
  const auto counted = epoch_member_names(model);
  if (counted.empty()) return;

  for (const FunctionDecl& fn : model.functions()) {
    const std::vector<Token>& t = fn.file->tokens();

    // Reference aliases bound from a counted member anywhere in the
    // initializer: `MpscQueue<Packet>& q = *mailboxes_[node];`.
    std::set<std::string_view> names(counted.begin(), counted.end());
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (t[i].kind != Tok::Identifier || t[i + 1].text != "=") continue;
      if (i == 0 || t[i - 1].text != "&") continue;
      bool from_counted = false;
      for (std::size_t j = i + 2; j < fn.body_end && t[j].text != ";"; ++j) {
        if (t[j].kind == Tok::Identifier && counted.count(t[j].text) != 0) {
          from_counted = true;
        }
      }
      if (from_counted) names.insert(t[i].text);
    }

    struct Site {
      const CallSite* cs = nullptr;
      bool push = false;
    };
    std::vector<Site> sites;
    std::vector<std::size_t> sent_toks;
    std::vector<std::size_t> handled_toks;
    for (const CallSite& cs : fn.calls) {
      if (cs.callee == "note_sent") sent_toks.push_back(cs.tok);
      if (cs.callee == "note_handled") handled_toks.push_back(cs.tok);
      if (!is_push_op(cs.callee) && !is_pop_op(cs.callee)) continue;
      const std::string_view recv = proto::receiver_object(t, cs.tok);
      if (recv.empty() || names.count(recv) == 0) continue;
      sites.push_back(Site{&cs, is_push_op(cs.callee)});
    }
    if (sites.empty()) continue;

    for (const Site& s : sites) {
      const CallSite& cs = *s.cs;
      const std::string_view recv = proto::receiver_object(t, cs.tok);
      if (s.push) {
        bool sent_before = false;
        bool sent_after = false;
        for (std::size_t st : sent_toks) {
          (st < cs.tok ? sent_before : sent_after) = true;
        }
        bool transfer = false;
        for (const Site& o : sites) {
          if (!o.push && o.cs->tok < cs.tok) transfer = true;
        }
        if (sent_before || transfer) continue;
        if (sent_after) {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "sent epoch bumped only AFTER the packet is visible "
                     "on '" + std::string(recv) +
                         "'; a racing all_idle() between the publish and "
                         "the bump sees balanced epochs over an in-flight "
                         "message — call note_sent before the push");
        } else {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "packet made visible on epoch-counted channel '" +
                         std::string(recv) +
                         "' without bumping the sent epoch (note_sent); "
                         "termination detection can declare quiescence "
                         "over this in-flight message");
        }
      } else {
        bool handled_after = false;
        for (std::size_t ht : handled_toks) {
          if (ht > cs.tok) handled_after = true;
        }
        bool transfer = false;
        for (const Site& o : sites) {
          if (o.push && o.cs->tok > cs.tok) transfer = true;
        }
        if (handled_after || transfer) continue;
        // The popped value may escape to an accounting caller: either the
        // call itself sits in a return, or the variable it binds is
        // returned later in the function.
        const std::size_t start = chain_start(t, cs.tok);
        bool escapes = start > 0 && t[start - 1].text == "return";
        std::string_view var;
        if (!escapes && start >= 2 &&
            (t[start - 1].text == "=" ||
             (t[start - 1].text == "*" && start >= 3 &&
              t[start - 2].text == "="))) {
          const std::size_t eq = t[start - 1].text == "=" ? start - 1
                                                          : start - 2;
          if (t[eq - 1].kind == Tok::Identifier) var = t[eq - 1].text;
        }
        if (!escapes && !var.empty()) {
          for (std::size_t i = cs.tok; i < fn.body_end && !escapes; ++i) {
            if (t[i].kind != Tok::Identifier || t[i].text != "return") {
              continue;
            }
            for (std::size_t j = i + 1;
                 j < fn.body_end && t[j].text != ";"; ++j) {
              if (t[j].kind == Tok::Identifier && t[j].text == var) {
                escapes = true;
              }
            }
          }
        }
        if (!escapes) {
          ctx.report(*fn.file, cs.line, cs.col, kId,
                     "packet taken from epoch-counted channel '" +
                         std::string(recv) +
                         "' on a path that neither bumps the handled "
                         "epoch (note_handled), re-publishes it, nor "
                         "returns it to an accounting caller");
        }
      }
    }
  }
}

}  // namespace hal::lint
