// HL008 hal-send-graph: cross-TU send/handler graph for the AM protocol.
//
// The Handler enum is the runtime's wire vocabulary: kernel encode sites
// assign an id into Packet::handler, and the dispatch switch decodes it —
// in a different TU. Nothing in the type system ties the two sides
// together, so this check rebuilds the graph from every scanned TU:
//
//   * an id that is decoded (case label) but never assigned at any send
//     site is an unreachable handler;
//   * an id that is assigned but never decoded is a message that falls
//     into the dispatcher's default/panic arm;
//   * an id that only exists in the enum is dead vocabulary;
//   * where both sides are analyzable, the word-slot footprint must agree:
//     a decode arm (or the handler function it forwards the packet to)
//     reading words[i] that no encode site writes, or reading a payload no
//     encode site attaches, is the classic "argc/word-count drifted on one
//     side" protocol bug.
//
// Mentions that are neither case labels nor `X.handler = id` assignments
// (registration aggregates like BulkHandlers{...}, selector packing, ...)
// count as evidence on BOTH sides: ids routed through variables are
// handled by their own indirection, not misreported here.
#include <map>
#include <set>
#include <string>

#include "lint/checks.hpp"
#include "lint/protocol_util.hpp"

namespace hal::lint {

namespace {

constexpr const char* kId = "hal-send-graph";

struct SiteRef {
  SourceFile* file = nullptr;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::size_t tok = 0;
  const FunctionDecl* fn = nullptr;  ///< enclosing definition, if any
  std::string var;                   ///< packet variable at the site
};

struct HandlerInfo {
  SourceFile* file = nullptr;  ///< file of the enum definition
  std::uint32_t line = 0;      ///< enumerator line
  std::vector<SiteRef> sends;
  std::vector<SiteRef> cases;
  bool generic = false;  ///< mentioned outside both patterns
};

/// words[i] / payload footprint of one side of a handler.
struct WordSet {
  std::set<int> idx;
  bool dynamic = false;  ///< non-literal index seen — side unanalyzable
  bool payload = false;
};

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
  }
  return true;
}

/// Record every `var.words[...]`, `var.words = {...}` and `var.payload`
/// use in [begin, end) into `out`. The same scan serves both sides:
/// indexed mentions are writes at encode sites and reads at decode sites.
void scan_packet_uses(const std::vector<Token>& t, std::size_t begin,
                      std::size_t end, std::string_view var, WordSet& out) {
  if (var.empty()) return;
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (t[i].kind != Tok::Identifier || t[i].text != var) continue;
    if (t[i + 1].text != "." && t[i + 1].text != "->") continue;
    if (t[i + 2].text == "payload") {
      out.payload = true;
      continue;
    }
    if (t[i + 2].text != "words") continue;
    if (i + 3 < end && t[i + 3].text == "[") {
      if (i + 5 < end && t[i + 4].kind == Tok::Number &&
          all_digits(t[i + 4].text) && t[i + 5].text == "]") {
        out.idx.insert(std::stoi(std::string(t[i + 4].text)));
      } else {
        out.dynamic = true;
      }
    } else if (i + 4 < end && t[i + 3].text == "=" &&
               t[i + 4].text == "{") {
      // Aggregate form `p.words = {a, b, c};` writes slots 0..N-1.
      const std::size_t n = proto::count_args(t, i + 4, end);
      for (std::size_t k = 0; k < n; ++k) {
        out.idx.insert(static_cast<int>(k));
      }
    }
  }
}

/// Name of the Packet parameter of `fn`, or "" (unnamed / not found).
std::string_view packet_param(const std::vector<Token>& t,
                              const FunctionDecl& fn) {
  std::size_t j = fn.body_begin;
  while (j > 0) {
    --j;
    if (t[j].text == ")") break;
    if (t[j].kind == Tok::Identifier &&
        (t[j].text == "const" || t[j].text == "noexcept" ||
         t[j].text == "override" || t[j].text == "final")) {
      continue;
    }
    return {};  // ctor init list / trailing return / ...: give up safely
  }
  if (j == 0) return {};
  int depth = 0;
  std::size_t close = j;
  while (j > 0) {
    if (t[j].text == ")") ++depth;
    if (t[j].text == "(" && --depth == 0) break;
    --j;
  }
  for (std::size_t k = j + 1; k < close; ++k) {
    if (t[k].kind == Tok::Identifier && t[k].text == "Packet") {
      std::string_view name;
      for (std::size_t m = k + 1; m < close; ++m) {
        if (t[m].text == ",") break;
        if (t[m].kind == Tok::Identifier) name = t[m].text;
      }
      return name;
    }
  }
  return {};
}

struct SwitchInfo {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::string var;  ///< X in `switch (X.handler)`, "" if another switch
};

std::vector<SwitchInfo> handler_switches(const std::vector<Token>& t,
                                         const FunctionDecl& fn) {
  std::vector<SwitchInfo> out;
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    if (t[i].kind != Tok::Identifier || t[i].text != "switch") continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t close = tokq::match(t, i + 1, fn.body_end);
    if (close + 1 >= fn.body_end || t[close + 1].text != "{") continue;
    SwitchInfo sw;
    sw.body_begin = close + 1;
    sw.body_end = tokq::match(t, sw.body_begin, fn.body_end);
    for (std::size_t k = i + 2; k + 2 < close; ++k) {
      if (t[k].kind == Tok::Identifier &&
          (t[k + 1].text == "." || t[k + 1].text == "->") &&
          t[k + 2].text == "handler") {
        sw.var = std::string(t[k].text);
        break;
      }
    }
    out.push_back(sw);
  }
  return out;
}

/// Token range of the case arm starting at the label token `case_tok`
/// inside switch body (body_begin, body_end): from the label's ':' up to
/// the next same-level case/default or the switch end.
proto::LoopRange case_arm(const std::vector<Token>& t, std::size_t case_tok,
                          const SwitchInfo& sw) {
  std::size_t colon = case_tok;
  while (colon < sw.body_end && t[colon].text != ":") ++colon;
  std::size_t end = sw.body_end;
  int depth = 0;
  for (std::size_t i = colon + 1; i < sw.body_end; ++i) {
    const std::string_view x = t[i].text;
    if (x == "{" || x == "(" || x == "[") ++depth;
    if (x == "}" || x == ")" || x == "]") --depth;
    if (depth == 0 && t[i].kind == Tok::Identifier &&
        (x == "case" || x == "default")) {
      end = i;
      break;
    }
  }
  return proto::LoopRange{colon, end};
}

}  // namespace

void run_send_graph(CheckContext& ctx) {
  const Model& model = ctx.model();

  // 1. The wire vocabulary: every `enum [class] Handler { ... }`.
  std::map<std::string, HandlerInfo, std::less<>> handlers;
  std::map<const SourceFile*, std::vector<proto::LoopRange>> enum_bodies;
  for (const auto& fptr : model.files()) {
    SourceFile* file = fptr.get();
    const std::vector<Token>& t = file->tokens();
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != Tok::Identifier || t[i].text != "enum") continue;
      std::size_t j = i + 1;
      if (t[j].text == "class" || t[j].text == "struct") ++j;
      if (j >= t.size() || t[j].kind != Tok::Identifier ||
          t[j].text != "Handler") {
        continue;
      }
      ++j;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (j >= t.size() || t[j].text != "{") continue;  // fwd decl
      const std::size_t open = j;
      const std::size_t close = tokq::match(t, open, t.size());
      enum_bodies[file].push_back(proto::LoopRange{open, close});
      std::size_t k = open + 1;
      while (k < close) {
        if (t[k].kind == Tok::Identifier) {
          HandlerInfo& h = handlers[std::string(t[k].text)];
          h.file = file;
          h.line = t[k].line;
          int depth = 0;
          while (k < close) {
            const std::string_view x = t[k].text;
            if (x == "{" || x == "(" || x == "[") ++depth;
            if (x == "}" || x == ")" || x == "]") --depth;
            if (x == "," && depth == 0) break;
            ++k;
          }
        }
        ++k;
      }
    }
  }
  if (handlers.empty()) return;

  // Function lookup per file for enclosing-definition resolution.
  std::map<const SourceFile*, std::vector<const FunctionDecl*>> fns_by_file;
  for (const FunctionDecl& fn : model.functions()) {
    fns_by_file[fn.file].push_back(&fn);
  }
  const auto enclosing = [&](SourceFile* file,
                             std::size_t tok) -> const FunctionDecl* {
    const auto it = fns_by_file.find(file);
    if (it == fns_by_file.end()) return nullptr;
    const FunctionDecl* best = nullptr;
    for (const FunctionDecl* fn : it->second) {
      if (fn->body_begin < tok && tok < fn->body_end) {
        if (best == nullptr || fn->body_begin > best->body_begin) best = fn;
      }
    }
    return best;
  };

  // 2. Classify every mention of a handler id across all TUs.
  for (const auto& fptr : model.files()) {
    SourceFile* file = fptr.get();
    const std::vector<Token>& t = file->tokens();
    const auto& bodies = enum_bodies[file];
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::Identifier) continue;
      const auto hit = handlers.find(t[i].text);
      if (hit == handlers.end()) continue;
      bool in_enum = false;
      for (const proto::LoopRange& b : bodies) {
        if (b.body_begin < i && i < b.body_end) in_enum = true;
      }
      if (in_enum) continue;
      HandlerInfo& h = hit->second;
      // `Handler::kHX` — look through the qualifier for the classifier.
      std::size_t prev = i;
      if (prev >= 2 && t[prev - 1].text == "::" &&
          t[prev - 2].text == "Handler") {
        prev -= 2;
      }
      SiteRef site;
      site.file = file;
      site.line = t[i].line;
      site.col = t[i].col;
      site.tok = i;
      site.fn = enclosing(file, i);
      if (prev >= 1 && t[prev - 1].text == "case") {
        h.cases.push_back(site);
      } else if (prev >= 4 && t[prev - 1].text == "=" &&
                 t[prev - 2].text == "handler" &&
                 (t[prev - 3].text == "." || t[prev - 3].text == "->") &&
                 t[prev - 4].kind == Tok::Identifier) {
        site.var = std::string(t[prev - 4].text);
        h.sends.push_back(site);
      } else {
        h.generic = true;
      }
    }
  }

  // 3. Reachability over the graph.
  for (const auto& [name, h] : handlers) {
    if (h.generic) continue;
    if (h.sends.empty() && h.cases.empty()) {
      ctx.report(*h.file, h.line, 1, kId,
                 "handler id '" + name +
                     "' is defined but neither sent nor handled anywhere "
                     "in the scanned TUs (dead vocabulary)");
      continue;
    }
    if (h.sends.empty() && !h.cases.empty()) {
      const SiteRef& c = h.cases.front();
      ctx.report(*c.file, c.line, c.col, kId,
                 "handler '" + name +
                     "' is decoded here but no send site in any scanned TU "
                     "assigns it (unreachable handler)");
    }
    if (h.cases.empty() && !h.sends.empty()) {
      const SiteRef& s = h.sends.front();
      ctx.report(*s.file, s.line, s.col, kId,
                 "handler '" + name +
                     "' is sent here but no dispatch switch in any scanned "
                     "TU decodes it (message would hit the default arm)");
    }
  }

  // 4. Word-slot / payload footprint agreement between the two sides.
  for (const auto& [name, h] : handlers) {
    if (h.sends.empty() || h.cases.empty()) continue;
    WordSet enc;
    for (const SiteRef& s : h.sends) {
      if (s.fn == nullptr) {
        enc.dynamic = true;
        continue;
      }
      scan_packet_uses(s.fn->file->tokens(), s.fn->body_begin,
                       s.fn->body_end, s.var, enc);
    }
    if (enc.dynamic) continue;
    for (const SiteRef& c : h.cases) {
      if (c.fn == nullptr) continue;
      const std::vector<Token>& t = c.fn->file->tokens();
      const auto sws = handler_switches(t, *c.fn);
      const SwitchInfo* inner = nullptr;
      for (const SwitchInfo& cand : sws) {
        if (cand.body_begin < c.tok && c.tok < cand.body_end &&
            !cand.var.empty() &&
            (inner == nullptr || cand.body_begin > inner->body_begin)) {
          inner = &cand;
        }
      }
      if (inner == nullptr) continue;
      const proto::LoopRange arm = case_arm(t, c.tok, *inner);
      WordSet dec;
      scan_packet_uses(t, arm.body_begin, arm.body_end, inner->var, dec);
      // Depth-1 forwarding: `on_foo(p)` hands the packet to the real
      // handler function — scan its body against its own Packet param.
      for (const CallSite& cs : c.fn->calls) {
        if (cs.tok <= arm.body_begin || cs.tok >= arm.body_end) continue;
        if (cs.lparen == 0) continue;
        if (proto::count_args(t, cs.lparen, c.fn->body_end) < 1) continue;
        bool passes_packet = false;
        const std::size_t close =
            tokq::match(t, cs.lparen, c.fn->body_end);
        for (std::size_t k = cs.lparen + 1; k < close; ++k) {
          if (t[k].kind == Tok::Identifier && t[k].text == inner->var) {
            passes_packet = true;
          }
        }
        if (!passes_packet) continue;
        for (std::size_t fi : model.functions_named(cs.callee)) {
          const FunctionDecl& target = model.functions()[fi];
          const std::vector<Token>& tt = target.file->tokens();
          const std::string_view param = packet_param(tt, target);
          scan_packet_uses(tt, target.body_begin, target.body_end, param,
                           dec);
        }
      }
      if (dec.dynamic) continue;
      for (int ridx : dec.idx) {
        if (enc.idx.count(ridx) == 0) {
          ctx.report(*c.file, c.line, c.col, kId,
                     "handler '" + name + "' decode reads words[" +
                         std::to_string(ridx) +
                         "] but no encode site writes that slot "
                         "(word-count drift between send and handle)");
        }
      }
      if (dec.payload && !enc.payload) {
        ctx.report(*c.file, c.line, c.col, kId,
                   "handler '" + name +
                       "' decode reads the payload but no encode site "
                       "attaches one");
      }
    }
  }
}

}  // namespace hal::lint
