// Declaration extraction: a recursive-descent walk over the token stream
// that recognises the structural C++ subset HAL uses.
#include <cctype>

#include "lint/model.hpp"

namespace hal::lint {

namespace tokq {

std::size_t match(const std::vector<Token>& t, std::size_t i,
                  std::size_t end) {
  const std::string_view open = t[i].text;
  const std::string_view close =
      open == "(" ? ")" : (open == "{" ? "}" : "]");
  int depth = 0;
  for (std::size_t j = i; j < end; ++j) {
    if (t[j].kind != Tok::Punct) continue;
    if (t[j].text == open) {
      ++depth;
    } else if (t[j].text == close) {
      if (--depth == 0) return j;
    }
  }
  return end;
}

namespace {

/// If `i` is the '<' of a plausible template-argument list, returns the
/// index just past the closing '>'. Bails (returns i) on statement
/// boundaries, so comparison operators are left alone.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i,
                        std::size_t end) {
  if (i >= end || t[i].text != "<") return i;
  int depth = 0;
  const std::size_t limit = i + 256 < end ? i + 256 : end;
  for (std::size_t j = i; j < limit; ++j) {
    const std::string_view x = t[j].text;
    if (t[j].kind == Tok::Punct) {
      if (x == "<") {
        ++depth;
      } else if (x == ">") {
        if (--depth == 0) return j + 1;
      } else if (x == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (x == ";" || x == "{" || x == "}") {
        return i;  // not a template-argument list
      }
    }
  }
  return i;
}

}  // namespace

std::size_t call_lparen(const std::vector<Token>& t, std::size_t i,
                        std::size_t end) {
  if (i >= end || t[i].kind != Tok::Identifier) return 0;
  std::size_t j = i + 1;
  if (j < end && t[j].text == "<") {
    const std::size_t after = skip_angles(t, j, end);
    if (after == j) return 0;  // '<' was a comparison
    j = after;
  }
  return (j < end && t[j].text == "(") ? j : 0;
}

}  // namespace tokq

namespace {

using tokq::call_lparen;
using tokq::match;

bool is_any(std::string_view x, std::initializer_list<std::string_view> set) {
  for (const std::string_view s : set) {
    if (x == s) return true;
  }
  return false;
}

bool all_caps_macro_name(std::string_view x) {
  bool has_alpha = false;
  for (const char c : x) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

const std::initializer_list<std::string_view> kControlKeywords = {
    "if",     "for",         "while",    "switch",           "return",
    "sizeof", "alignof",     "catch",    "decltype",         "alignas",
    "co_await", "co_return", "co_yield", "static_cast",      "const_cast",
    "throw", "dynamic_cast", "noexcept", "reinterpret_cast", "assert"};

struct Extractor {
  Model& model;
  std::vector<FunctionDecl>& functions;
  std::vector<ClassDecl>& classes;
  SourceFile& file;
  const std::vector<Token>& t;

  enum class ParseKind { FunctionDef, Statement, Skip };
  struct ParseResult {
    ParseKind kind = ParseKind::Skip;
    std::size_t next = 0;
    std::size_t name_tok = 0;   // FunctionDef / Skip-macro: the name
    std::size_t body_begin = 0;  // FunctionDef: '{'
    std::size_t body_end = 0;    // FunctionDef: '}'
    std::size_t stmt_begin = 0;  // Statement: token range [begin, end)
    std::size_t stmt_end = 0;    // exclusive, points at the ';'
  };

  void run() { scan_region(0, t.size(), ""); }

  // --- region / class scanning ------------------------------------------

  void scan_region(std::size_t begin, std::size_t end,
                   const std::string& cls) {
    std::size_t i = begin;
    const bool in_class = !cls.empty();
    while (i < end) {
      const std::string_view x = t[i].text;
      if (t[i].kind == Tok::Identifier) {
        if (x == "namespace") {
          i = scan_namespace(i, end);
          continue;
        }
        if (x == "class" || x == "struct" || x == "union") {
          i = parse_class(i, end);
          continue;
        }
        if (x == "enum") {
          i = skip_enum(i, end);
          continue;
        }
        if (x == "template") {
          i = skip_template_header(i, end);
          continue;
        }
        if (is_any(x, {"using", "typedef", "friend", "static_assert"})) {
          i = skip_to_semi(i, end);
          continue;
        }
        if (in_class && is_any(x, {"public", "private", "protected"}) &&
            i + 1 < end && t[i + 1].text == ":") {
          i += 2;
          continue;
        }
        if (x == "extern" && i + 2 < end && t[i + 1].kind == Tok::String &&
            t[i + 2].text == "{") {
          scan_region(i + 3, match(t, i + 2, end), cls);
          i = match(t, i + 2, end) + 1;
          continue;
        }
        // Candidate function definition, member variable, or macro use.
        const ParseResult r = parse_callable(i, end);
        switch (r.kind) {
          case ParseKind::FunctionDef:
            record_function(r, cls);
            break;
          case ParseKind::Statement:
            if (in_class) classify_member(r, cls);
            break;
          case ParseKind::Skip:
            if (in_class && r.name_tok != 0) {
              if (t[r.name_tok].text == "HAL_BEHAVIOR") {
                class_named(cls).has_behavior_macro = true;
              } else if (t[r.name_tok].text == "HAL_MEMORY_PROTOCOL") {
                note_protocol_marker(r.name_tok, end, cls);
              }
            }
            break;
        }
        i = r.next;
        continue;
      }
      if (x == "{") {  // unattributed block: scan transparently
        scan_region(i + 1, match(t, i, end), cls);
        i = match(t, i, end) + 1;
        continue;
      }
      ++i;
    }
  }

  void note_protocol_marker(std::size_t name_tok, std::size_t end,
                            const std::string& cls) {
    // HAL_MEMORY_PROTOCOL("name"): the string literal binds the class to a
    // policy-table entry in check_memory_order.cpp.
    if (name_tok + 2 >= end || t[name_tok + 1].text != "(" ||
        t[name_tok + 2].kind != Tok::String) {
      return;
    }
    std::string_view lit = t[name_tok + 2].text;
    if (lit.size() >= 2 && lit.front() == '"' && lit.back() == '"') {
      lit = lit.substr(1, lit.size() - 2);
    }
    ClassDecl& c = class_named(cls);
    c.protocol = std::string(lit);
    c.protocol_line = t[name_tok].line;
  }

  std::size_t scan_namespace(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    while (j < end &&
           (t[j].kind == Tok::Identifier || t[j].text == "::")) {
      if (t[j].text == "=") break;
      ++j;
    }
    if (j < end && t[j].text == "{") {
      const std::size_t close = match(t, j, end);
      scan_region(j + 1, close, "");
      return close + 1;
    }
    return skip_to_semi(i, end);  // alias or malformed
  }

  std::size_t parse_class(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    // Skip attribute macros / alignas between the keyword and the name.
    while (j < end) {
      if (t[j].text == "[" && j + 1 < end && t[j + 1].text == "[") {
        j = match(t, j, end) + 1;
      } else if (t[j].kind == Tok::Identifier && j + 1 < end &&
                 t[j + 1].text == "(" && all_caps_macro_name(t[j].text)) {
        j = match(t, j + 1, end) + 1;
      } else {
        break;
      }
    }
    if (j >= end || t[j].kind != Tok::Identifier) {
      return skip_to_semi(i, end);  // anonymous aggregate: not modelled
    }
    const std::size_t name_tok = j++;
    if (j < end && t[j].text == "<") j = skip_specialization(j, end);
    if (j < end && t[j].text == "final") ++j;
    std::string bases;
    if (j < end && t[j].text == ":") {
      ++j;
      while (j < end && t[j].text != "{" && t[j].text != ";") {
        if (!bases.empty()) bases += ' ';
        bases += t[j].text;
        ++j;
      }
    }
    if (j >= end || t[j].text != "{") {
      return skip_to_semi(i, end);  // forward declaration
    }
    const std::size_t body = j;
    const std::size_t close = match(t, body, end);
    ClassDecl decl;
    decl.name = std::string(t[name_tok].text);
    decl.file = &file;
    decl.line = t[i].line;
    decl.bases = std::move(bases);
    decl.body_begin = body;
    decl.body_end = close;
    classes.push_back(std::move(decl));
    scan_region(body + 1, close, std::string(t[name_tok].text));
    ClassDecl& done = class_named(std::string(t[name_tok].text));
    for (const MemberVar& m : done.members) {
      if (m.type_text.find("NodeAffinityGuard") != std::string::npos) {
        done.owns_affinity_guard = true;
      }
    }
    return skip_to_semi(close + 1, end);
  }

  std::size_t skip_specialization(std::size_t j, std::size_t end) {
    int depth = 0;
    while (j < end) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">" && --depth == 0) return j + 1;
      if (t[j].text == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      }
      if (t[j].text == "{" || t[j].text == ";") return j;
      ++j;
    }
    return j;
  }

  std::size_t skip_enum(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    while (j < end && t[j].text != "{" && t[j].text != ";") ++j;
    if (j < end && t[j].text == "{") j = match(t, j, end);
    return skip_to_semi(j, end);
  }

  std::size_t skip_template_header(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    if (j < end && t[j].text == "<") {
      int depth = 0;
      while (j < end) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) return j + 1;
        if (t[j].text == ">>") {
          depth -= 2;
          if (depth <= 0) return j + 1;
        }
        ++j;
      }
    }
    return i + 1;
  }

  std::size_t skip_to_semi(std::size_t i, std::size_t end) {
    std::size_t j = i;
    while (j < end) {
      const std::string_view x = t[j].text;
      if (x == ";") return j + 1;
      if (x == "{" || x == "(" || x == "[") {
        j = match(t, j, end) + 1;
        continue;
      }
      if (x == "}") return j;  // ran off the enclosing scope
      ++j;
    }
    return end;
  }

  // --- function / member parsing ----------------------------------------

  ParseResult parse_callable(std::size_t i, std::size_t end) {
    ParseResult r;
    r.stmt_begin = i;
    // Find the declarator's '(' — or decide this is a plain statement.
    std::size_t j = i;
    std::size_t lparen = 0;
    while (j < end) {
      const std::string_view x = t[j].text;
      if (x == ";") {
        r.kind = ParseKind::Statement;
        r.stmt_end = j;
        r.next = j + 1;
        return r;
      }
      if (x == "=") {  // initializer follows: member / variable
        r.kind = ParseKind::Statement;
        r.stmt_end = skip_to_semi(j, end) - 1;
        r.next = r.stmt_end + 1;
        return r;
      }
      if (x == "{") {  // brace-init member (`T x{};`) or stray block
        const std::size_t close = match(t, j, end);
        r.kind = ParseKind::Statement;
        r.stmt_end = skip_to_semi(close, end) - 1;
        r.next = r.stmt_end + 1;
        return r;
      }
      if (x == "}") {
        r.kind = ParseKind::Skip;
        r.next = j;
        return r;
      }
      if (t[j].kind == Tok::Identifier && j + 1 < end &&
          t[j + 1].text == "<") {
        const std::size_t p = call_lparen(t, j, end);
        if (p != 0) {
          lparen = p;
          break;
        }
        // Templated type name without a following '(' — step past args.
        const std::size_t after = skip_specialization(j + 1, end);
        j = after > j + 1 ? after : j + 1;
        continue;
      }
      if (x == "(") {
        lparen = j;
        break;
      }
      ++j;
    }
    if (lparen == 0 || lparen == i) {
      r.kind = ParseKind::Skip;
      r.next = i + 1;
      return r;
    }
    const std::size_t name_tok = lparen - 1;
    if (t[name_tok].kind != Tok::Identifier &&
        !(name_tok >= 1 && t[name_tok - 1].text == "operator")) {
      r.kind = ParseKind::Statement;
      r.stmt_end = skip_to_semi(lparen, end) - 1;
      r.next = r.stmt_end + 1;
      return r;
    }
    r.name_tok = name_tok;
    std::size_t q = match(t, lparen, end);
    // Specifier run after the parameter list.
    std::size_t k = q + 1;
    while (k < end) {
      const std::string_view x = t[k].text;
      if (is_any(x, {"const", "override", "final", "mutable", "volatile",
                     "&", "&&", "try"})) {
        ++k;
        continue;
      }
      // Annotation macros after the parameter list:
      // HAL_NO_THREAD_SAFETY_ANALYSIS, HAL_ASSERT_CAPABILITY(...), ...
      if (t[k].kind == Tok::Identifier && all_caps_macro_name(t[k].text)) {
        ++k;
        if (k < end && t[k].text == "(") k = match(t, k, end) + 1;
        continue;
      }
      if (x == "noexcept" || x == "requires" || x == "throw") {
        ++k;
        if (k < end && t[k].text == "(") k = match(t, k, end) + 1;
        continue;
      }
      if (x == "->") {  // trailing return type
        ++k;
        while (k < end && !is_any(t[k].text, {"{", ";", "="})) {
          if (t[k].text == "<") {
            const std::size_t after = skip_specialization(k, end);
            k = after > k ? after : k + 1;
            continue;
          }
          ++k;
        }
        continue;
      }
      break;
    }
    if (k < end && t[k].text == ":") {  // constructor initialiser list
      ++k;
      while (k < end && t[k].text != "{") {
        if (t[k].text == "(" || t[k].text == "[") {
          k = match(t, k, end) + 1;
          continue;
        }
        if (t[k].kind == Tok::Identifier && k + 1 < end &&
            t[k + 1].text == "{") {
          k = match(t, k + 1, end) + 1;
          continue;
        }
        if (t[k].text == ";" || t[k].text == "}") break;
        ++k;
      }
    }
    if (k < end && t[k].text == "{") {
      r.kind = ParseKind::FunctionDef;
      r.body_begin = k;
      r.body_end = match(t, k, end);
      r.next = r.body_end + 1;
      return r;
    }
    if (k < end && (t[k].text == ";" || t[k].text == "=")) {
      // Function declaration / deleted / defaulted / pure.
      r.kind = ParseKind::Skip;
      r.next = skip_to_semi(k, end);
      return r;
    }
    // Not a function after all — most likely a macro invocation at class
    // scope (HAL_BEHAVIOR(...)). Resume right past its ')'.
    r.kind = ParseKind::Skip;
    r.next = q + 1;
    return r;
  }

  void record_function(const ParseResult& r, const std::string& cls) {
    FunctionDecl fn;
    std::size_t name_tok = r.name_tok;
    std::string name(t[name_tok].text);
    if (name_tok >= 1 && t[name_tok - 1].text == "~") {
      name = "~" + name;
      --name_tok;
    }
    std::string owner = cls;
    if (name_tok >= 2 && t[name_tok - 1].text == "::" &&
        t[name_tok - 2].kind == Tok::Identifier) {
      owner = std::string(t[name_tok - 2].text);  // out-of-line member
    }
    fn.name = std::move(name);
    fn.class_name = owner;
    fn.qualified = owner.empty() ? fn.name : owner + "::" + fn.name;
    fn.file = &file;
    fn.line = t[r.name_tok].line;
    fn.body_begin = r.body_begin;
    fn.body_end = r.body_end;
    scan_body(fn);
    if (!cls.empty()) {
      // nothing extra: methods are found via class_name
    }
    functions.push_back(std::move(fn));
  }

  // --- body scanning: calls and lambdas ---------------------------------

  void scan_body(FunctionDecl& fn) {
    struct Frame {
      std::size_t lparen;
      std::string callee;
    };
    std::vector<Frame> stack;
    std::string pending_callee;
    std::size_t pending_lparen = 0;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const std::string_view x = t[i].text;
      if (t[i].kind == Tok::Identifier) {
        if (x == "new") {
          CallSite c;
          c.callee = t[i].text;
          const bool placement = i + 1 < fn.body_end &&
                                 t[i + 1].text == "(";
          c.qual = placement ? "placement" : "";
          c.tok = i;
          c.line = t[i].line;
          c.col = t[i].col;
          fn.calls.push_back(std::move(c));
          continue;
        }
        const std::size_t p = call_lparen(t, i, fn.body_end);
        if (p != 0 && !is_any(x, kControlKeywords)) {
          CallSite c;
          c.callee = t[i].text;
          c.qual = receiver_text(i);
          c.tok = i;
          c.lparen = p;
          c.line = t[i].line;
          c.col = t[i].col;
          pending_callee = std::string(t[i].text);
          pending_lparen = p;
          fn.calls.push_back(std::move(c));
        }
        continue;
      }
      if (x == "(") {
        Frame f;
        f.lparen = i;
        if (i == pending_lparen) f.callee = pending_callee;
        stack.push_back(std::move(f));
        continue;
      }
      if (x == ")") {
        if (!stack.empty()) stack.pop_back();
        continue;
      }
      if (x == "[") {
        maybe_lambda(fn, i, stack);
        continue;
      }
    }
  }

  std::string receiver_text(std::size_t i) {
    // Receiver context just before the callee: "std::", "machine_.",
    // "k_.pool().". Walks back through ::/./-> chains, hopping over call
    // parens so `pool().` keeps the `pool` name.
    std::string out;
    std::size_t j = i;
    int hops = 0;
    while (j >= 1 && hops < 8) {
      const std::string_view prev = t[j - 1].text;
      if (prev == "::" || prev == "." || prev == "->") {
        out = std::string(prev) + out;
        --j;
        ++hops;
        continue;
      }
      if (j != i && t[j - 1].kind == Tok::Identifier) {
        out = std::string(prev) + out;
        --j;
        ++hops;
        continue;
      }
      if (j != i && prev == ")") {
        // Walk back over the balanced call parens.
        int depth = 0;
        std::size_t k = j - 1;
        while (k > 0) {
          if (t[k].text == ")") ++depth;
          if (t[k].text == "(" && --depth == 0) break;
          --k;
        }
        if (k == 0) break;
        out = "()" + out;
        j = k;
        ++hops;
        continue;
      }
      break;
    }
    return out;
  }

  template <typename Stack>
  void maybe_lambda(FunctionDecl& fn, std::size_t i, const Stack& stack) {
    if (i == 0) return;
    const Token& prev = t[i - 1];
    const bool intro_pos =
        (prev.kind == Tok::Punct &&
         is_any(prev.text, {"(", ",", "{", "=", ";", "&&", "||"})) ||
        prev.text == "return";
    if (!intro_pos) return;
    const std::size_t close = match(t, i, fn.body_end);
    if (close >= fn.body_end) return;
    const std::string_view after =
        close + 1 < fn.body_end ? t[close + 1].text : std::string_view{};
    if (!(after == "(" || after == "{" || after == "mutable" ||
          after == "->" || after == "<")) {
      return;
    }
    LambdaSite lam;
    lam.intro_tok = i;
    lam.line = t[i].line;
    lam.col = t[i].col;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string_view x = t[j].text;
      if (x == "this" && t[j - 1].text != "*") lam.captures_this = true;
      if (x == "&" || x == "&&") {
        const std::string_view nxt = t[j + 1].text;
        if (nxt == "," || nxt == "]" ||
            (t[j + 1].kind == Tok::Identifier && nxt != "this" &&
             (j + 2 >= close || t[j + 2].text == "," ||
              t[j + 2].text == "]"))) {
          lam.captures_by_ref = true;
        }
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (!it->callee.empty()) {
        lam.enclosing_callee = it->callee;
        break;
      }
    }
    fn.lambdas.push_back(std::move(lam));
  }

  // --- member classification --------------------------------------------

  void classify_member(const ParseResult& r, const std::string& cls) {
    const std::size_t begin = r.stmt_begin;
    const std::size_t end = r.stmt_end;
    if (begin >= end) return;
    const std::string_view first = t[begin].text;
    if (is_any(first, {"using", "typedef", "friend", "template", "public",
                       "private", "protected", "static_assert", "operator",
                       "return"})) {
      return;
    }
    MemberVar m;
    int angle = 0;
    std::size_t name_tok = 0;
    std::size_t type_end = end;
    for (std::size_t j = begin; j < end; ++j) {
      const std::string_view x = t[j].text;
      if (x == "<") ++angle;
      if (x == ">") angle = angle > 0 ? angle - 1 : 0;
      if (x == ">>") angle = angle >= 2 ? angle - 2 : 0;
      if (x == "(" || x == "[" || x == "{") {
        const std::size_t close = match(t, j, end);
        if (angle == 0 &&
            (x == "{" || x == "[" ||
             is_any(t[j - 1].text,
                    {"HAL_GUARDED_BY", "HAL_PT_GUARDED_BY"}))) {
          // annotation macro / array extent / brace-init: terminator
          if (is_any(t[j - 1].text,
                     {"HAL_GUARDED_BY", "HAL_PT_GUARDED_BY"})) {
            m.guarded = true;
            if (type_end == end) type_end = j - 1;
          } else if (type_end == end) {
            type_end = j;
          }
        }
        j = close;
        continue;
      }
      if (angle != 0) continue;
      if (t[j].kind == Tok::Identifier) {
        if (x == "static") m.is_static = true;
        if (x == "constexpr") m.is_constexpr = true;
        if (x == "const") m.is_const = true;
        if (is_any(x, {"HAL_GUARDED_BY", "HAL_PT_GUARDED_BY"})) {
          m.guarded = true;
          if (type_end == end) type_end = j;
          continue;
        }
        if (is_any(x, {"HAL_PARK_FLAG", "HAL_EPOCH_COUNTED"})) {
          // Declarator attributes (no argument list): freeze the type so
          // the member keeps the name that precedes the marker.
          if (x == "HAL_PARK_FLAG") m.park_flag = true;
          if (x == "HAL_EPOCH_COUNTED") m.epoch_counted = true;
          if (type_end == end) type_end = j;
          continue;
        }
        if (type_end == end) name_tok = j;
        continue;
      }
      if ((x == "&" || x == "&&")) m.is_reference = true;
      if (x == "=" || x == ":") {
        if (type_end == end) type_end = j;
      }
    }
    if (name_tok == 0) return;
    m.name = std::string(t[name_tok].text);
    m.line = t[name_tok].line;
    for (std::size_t j = begin; j < name_tok; ++j) {
      if (!m.type_text.empty()) m.type_text += ' ';
      m.type_text += t[j].text;
    }
    if (m.type_text.empty()) return;  // lone identifier: likely macro
    class_named(cls).members.push_back(std::move(m));
  }

  ClassDecl& class_named(const std::string& name) {
    for (auto it = classes.rbegin(); it != classes.rend(); ++it) {
      if (it->name == name && it->file == &file) return *it;
    }
    classes.emplace_back();
    classes.back().name = name;
    classes.back().file = &file;
    return classes.back();
  }
};

}  // namespace

void Model::add_file(std::unique_ptr<SourceFile> file) {
  SourceFile& f = *file;
  files_.push_back(std::move(file));
  const std::size_t first_fn = functions_.size();
  Extractor ex{*this, functions_, classes_, f, f.tokens()};
  ex.run();
  for (std::size_t i = first_fn; i < functions_.size(); ++i) {
    by_name_[functions_[i].name].push_back(i);
  }
}

const std::vector<std::size_t>& Model::functions_named(
    std::string_view name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kEmpty : it->second;
}

const ClassDecl* Model::find_class(std::string_view name) const {
  for (const ClassDecl& c : classes_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace hal::lint
