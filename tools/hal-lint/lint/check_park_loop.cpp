// HL006 hal-park-loop-protocol: wait loops that take part in the seq_cst
// RMW wakeup handshake must re-arm the park flag before EVERY predicate
// evaluation, not once before the first wait.
//
// The contract is the PR 8 lost-wakeup fix (proof at
// ThreadMachine::raw_push): the Vyukov MPSC queue's empty() can read true
// over a COMPLETED push while another producer's push is half-finished, so
// a sleeper that re-checks "empty" after a wakeup without re-arming
// `sleeping` races the gap-closing producer — that producer reads the flag
// false, skips its notify, and the sleeper parks over a live packet
// forever. Mechanically:
//
//   * every cv wait reachable in a function that touches a park flag
//     (HAL_PARK_FLAG, or an atomic member named `sleeping`) must sit inside
//     a loop whose body re-arms the flag with `exchange(true, seq_cst)`
//     before the wait;
//   * an arm that exists only ahead of the loop is the exact PR 8 bug
//     shape and gets its own message;
//   * the flag is written only through seq_cst exchanges — a plain store
//     (or assignment) does not take part in the RMW chain the proof needs,
//     and a weaker order breaks the single total order it leans on;
//   * the loop must disarm (`exchange(false, seq_cst)`) after exit, so
//     senders stop paying the mutex+notify once the node is awake;
//   * predicate-form waits (`cv.wait(lk, pred)`) are rejected on park-flag
//     paths: the hidden predicate re-evaluations cannot re-arm.
#include <set>
#include <string>

#include "lint/checks.hpp"
#include "lint/protocol_util.hpp"

namespace hal::lint {

namespace {

constexpr const char* kId = "hal-park-loop-protocol";

std::set<std::string, std::less<>> park_flag_names(const Model& model) {
  std::set<std::string, std::less<>> out;
  for (const ClassDecl& c : model.classes()) {
    for (const MemberVar& m : c.members) {
      if (m.park_flag ||
          m.type_text.find("ParkHandshake") != std::string::npos ||
          (m.name == "sleeping" &&
           m.type_text.find("atomic") != std::string::npos)) {
        out.insert(m.name);
      }
    }
  }
  return out;
}

struct Arm {
  std::size_t tok = 0;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string_view flag;
  bool value = false;     // exchange(true, ...) vs exchange(false, ...)
  bool seq_cst = true;    // explicit or defaulted seq_cst order
};

bool is_wait_name(std::string_view callee) {
  return callee == "wait" || callee == "wait_for" || callee == "wait_until";
}

}  // namespace

void run_park_loop(CheckContext& ctx) {
  const Model& model = ctx.model();
  const auto flags = park_flag_names(model);
  if (flags.empty()) return;
  for (const FunctionDecl& fn : model.functions()) {
    const std::vector<Token>& t = fn.file->tokens();
    // Only functions that touch a park flag are on the handshake path.
    bool touches = false;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end && !touches;
         ++i) {
      if (t[i].kind == Tok::Identifier && flags.count(t[i].text) != 0) {
        touches = true;
      }
    }
    if (!touches) continue;

    // Classify every exchange on a park flag, and forbid plain writes.
    std::vector<Arm> arms;
    for (const CallSite& c : fn.calls) {
      const std::string_view recv = proto::receiver_object(t, c.tok);
      if (recv.empty() || flags.count(recv) == 0) continue;
      if (c.callee == "store") {
        ctx.report(*fn.file, c.line, c.col, kId,
                   "park flag '" + std::string(recv) +
                       "' written with store(); the wakeup handshake is an "
                       "RMW chain — use exchange(..., seq_cst)");
        continue;
      }
      // The ParkHandshake wrapper's named operations are seq_cst exchanges
      // by construction (am/park_handshake.hpp, pinned there by HL007):
      // arm() raises, disarm()/claim_wake() lower.
      if (c.callee == "arm" || c.callee == "disarm" ||
          c.callee == "claim_wake") {
        Arm a;
        a.tok = c.tok;
        a.line = c.line;
        a.col = c.col;
        a.flag = recv;
        a.value = c.callee == "arm";
        a.seq_cst = true;
        arms.push_back(a);
        continue;
      }
      if (c.callee != "exchange" || c.lparen == 0) continue;
      Arm a;
      a.tok = c.tok;
      a.line = c.line;
      a.col = c.col;
      a.flag = recv;
      a.value = t[c.lparen + 1].text == "true";
      const auto orders = proto::order_args(t, c.lparen, fn.body_end);
      a.seq_cst = orders.empty() || orders[0] == "seq_cst";
      if (!a.seq_cst) {
        ctx.report(*fn.file, c.line, c.col, kId,
                   "park flag '" + std::string(recv) + "' exchange uses " +
                       "memory_order_" + std::string(orders[0]) +
                       "; the handshake proof needs the seq_cst RMW chain");
      }
      arms.push_back(a);
    }
    // Plain assignment to a park flag (atomic operator= is a seq_cst store,
    // still not an RMW).
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (t[i].kind == Tok::Identifier && flags.count(t[i].text) != 0 &&
          t[i + 1].text == "=") {
        ctx.report(*fn.file, t[i].line, t[i].col, kId,
                   "park flag '" + std::string(t[i].text) +
                       "' assigned directly; the wakeup handshake is an RMW "
                       "chain — use exchange(..., seq_cst)");
      }
    }

    // Wait sites: condition_variable waits on this handshake path.
    const auto loops = proto::braced_loops(t, fn);
    std::set<std::size_t> loops_checked;
    for (const CallSite& c : fn.calls) {
      if (!is_wait_name(c.callee)) continue;
      const std::string_view recv = proto::receiver_object(t, c.tok);
      if (recv.find("cv") == std::string_view::npos) continue;
      // Predicate-form waits re-evaluate the predicate inside the library:
      // no chance to re-arm between evaluations.
      const std::size_t args = proto::count_args(t, c.lparen, fn.body_end);
      const std::size_t plain_args = c.callee == "wait" ? 1 : 2;
      if (args > plain_args) {
        ctx.report(*fn.file, c.line, c.col, kId,
                   "predicate-form " + std::string(c.callee) +
                       " on a park-flag path: the hidden predicate "
                       "re-evaluations cannot re-arm the flag; use an "
                       "explicit loop");
        continue;
      }
      const proto::LoopRange* loop = proto::innermost_loop(loops, c.tok);
      if (loop == nullptr) {
        ctx.report(*fn.file, c.line, c.col, kId,
                   "cv wait on a park-flag path outside a loop: the flag "
                   "cannot be re-armed before each predicate evaluation");
        continue;
      }
      if (!loops_checked.insert(loop->body_begin).second) continue;
      // The loop must re-arm before the (first) wait it contains.
      std::size_t first_wait = c.tok;
      for (const CallSite& w : fn.calls) {
        if (is_wait_name(w.callee) && w.tok > loop->body_begin &&
            w.tok < first_wait) {
          first_wait = w.tok;
        }
      }
      bool armed_in_loop = false;
      bool armed_before_loop = false;
      for (const Arm& a : arms) {
        if (!a.value) continue;
        if (a.tok > loop->body_begin && a.tok < first_wait) {
          armed_in_loop = true;
        }
        if (a.tok < loop->body_begin) armed_before_loop = true;
      }
      if (!armed_in_loop) {
        if (armed_before_loop) {
          ctx.report(
              *fn.file, c.line, c.col, kId,
              "park flag armed only before the loop: a wakeup that reads "
              "the queue transiently empty re-parks with the flag down and "
              "the gap-closing producer skips its notify (the PR 8 "
              "lost-wakeup); re-arm with exchange(true, seq_cst) inside "
              "the loop before each predicate evaluation");
        } else {
          ctx.report(*fn.file, c.line, c.col, kId,
                     "park loop never arms the park flag; re-arm with "
                     "exchange(true, seq_cst) inside the loop before each "
                     "predicate evaluation");
        }
      }
      // After the loop the flag must be lowered again (senders shortcut the
      // mutex+notify while it is down).
      bool disarmed_after = false;
      for (const Arm& a : arms) {
        if (!a.value && a.seq_cst && a.tok > loop->body_end) {
          disarmed_after = true;
        }
      }
      if (!disarmed_after) {
        ctx.report(*fn.file, t[loop->body_end].line, t[loop->body_end].col,
                   kId,
                   "park loop does not disarm the flag after exit; add "
                   "exchange(false, seq_cst) so awake nodes stop charging "
                   "senders the mutex+notify");
      }
    }
  }
}

}  // namespace hal::lint
