// hal-lint core: source loading, a C++ token stream, suppression comments,
// and diagnostics.
//
// hal-lint is a contract checker for HAL's runtime idioms, not a general
// C++ front end. The engine lexes real tokens (so string/comment contents
// never confuse the checks) and recognises the structural subset of C++
// that the HAL codebase uses: namespaces, classes, member and free function
// definitions, call expressions, lambdas. That subset is enough to state
// the five contracts precisely; anything the parser cannot classify is
// skipped, never guessed at.
//
// An optional Clang LibTooling front end (tools/hal-lint/clang/) re-states
// the declarative checks over a full AST; it is CMake-gated on
// find_package(Clang) because the pinned container ships no Clang dev kit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hal::lint {

enum class Tok : std::uint8_t {
  Identifier,  ///< identifiers and keywords (checks compare text)
  Number,      ///< integer / floating literal, including suffixes
  String,      ///< string literal (text includes quotes), raw strings too
  Char,        ///< character literal
  Punct,       ///< operator / punctuator, longest-match ("::", "->", ...)
};

struct Token {
  Tok kind = Tok::Punct;
  std::string_view text;  ///< view into SourceFile::contents
  std::uint32_t line = 0;  ///< 1-based
  std::uint32_t col = 0;   ///< 1-based, byte column
};

struct Comment {
  std::string_view text;   ///< without the // or /* */ delimiters
  std::uint32_t line = 0;  ///< line the comment starts on
  std::uint32_t col = 0;
  bool own_line = false;  ///< nothing but whitespace precedes it on its line
};

/// A parsed `HAL_LINT_SUPPRESS(check[, check...]): reason` comment.
///
/// Placement rules: a suppression on the same line as the offending code
/// silences diagnostics on that line; a suppression alone on its own line
/// silences the next line that holds any token (so it can sit above a long
/// statement). A suppression on a class-head line is honoured class-wide by
/// checks that say so (capability coverage).
struct Suppression {
  std::vector<std::string> checks;  ///< check ids or codes; "*" for all
  std::uint32_t line = 0;           ///< line of the comment itself
  std::uint32_t applies_to = 0;     ///< line whose diagnostics it silences
  bool has_reason = false;          ///< a non-empty reason string followed
  bool used = false;                ///< hit by at least one diagnostic
};

struct Diagnostic {
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string check;  ///< check id, e.g. "hal-handler-purity"
  std::string message;
};

class SourceFile {
 public:
  /// Reads and lexes `path`. Returns nullptr if the file cannot be read.
  static std::unique_ptr<SourceFile> load(std::string path);

  /// Lexes `contents` under the given display path (for tests).
  static std::unique_ptr<SourceFile> from_string(std::string path,
                                                 std::string contents);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<Comment>& comments() const { return comments_; }
  const std::vector<Suppression>& suppressions() const {
    return suppressions_;
  }
  std::vector<Suppression>& suppressions() { return suppressions_; }

  /// True if a suppression covering `check` (by id, code, or "*") applies
  /// to `line`. Marks the suppression used.
  bool is_suppressed(std::string_view check, std::uint32_t line);

 private:
  void lex();
  void parse_suppressions();

  std::string path_;
  std::string contents_;
  std::vector<Token> tokens_;
  std::vector<Comment> comments_;
  std::vector<Suppression> suppressions_;
};

/// True for text that looks like one of hal-lint's own check identifiers
/// ("hal-..." id or "HLnnn" code). Used to flag typos inside suppressions.
bool is_known_check_name(std::string_view name);

}  // namespace hal::lint
