// HL000 hal-suppress-needs-reason: every HAL_LINT_SUPPRESS must name a
// known check and carry a non-empty reason string. The suppression syntax
// is the escape hatch for every other check, so this one is deliberately
// not suppressible — a silent escape hatch is no contract at all.
#include "lint/checks.hpp"

namespace hal::lint {

bool is_known_check_name(std::string_view name) {
  if (name == "*") return true;
  for (const Check& c : all_checks()) {
    if (name == c.id || name == c.code) return true;
  }
  return false;
}

void run_suppress_hygiene(CheckContext& ctx) {
  for (const auto& file : ctx.model().files()) {
    for (const Suppression& sup : file->suppressions()) {
      if (!sup.has_reason) {
        ctx.report_unsuppressable(
            *file, sup.line, 1, "hal-suppress-needs-reason",
            "HAL_LINT_SUPPRESS without a reason; write "
            "'// HAL_LINT_SUPPRESS(check): why this is sound'");
      }
      for (const std::string& name : sup.checks) {
        if (!is_known_check_name(name)) {
          ctx.report_unsuppressable(
              *file, sup.line, 1, "hal-suppress-needs-reason",
              "HAL_LINT_SUPPRESS names unknown check '" + name +
                  "' (run hal-lint --list-checks)");
        }
      }
      if (sup.checks.empty()) {
        ctx.report_unsuppressable(
            *file, sup.line, 1, "hal-suppress-needs-reason",
            "HAL_LINT_SUPPRESS with an empty check list");
      }
    }
  }
}

}  // namespace hal::lint
