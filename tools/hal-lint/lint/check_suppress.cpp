// HL000 hal-suppress-needs-reason: every HAL_LINT_SUPPRESS must name a
// known check and carry a non-empty reason string. The suppression syntax
// is the escape hatch for every other check, so this one is deliberately
// not suppressible — a silent escape hatch is no contract at all.
//
// HL010 hal-stale-suppress lives here too: a well-formed suppression that
// no diagnostic consumed during a full run silences nothing — the code it
// excused was fixed or moved — and a lingering escape hatch will silently
// swallow the next real finding on that line. Runs last (it reads the
// `used` flags the other checks set) and only over the full check set.
#include "lint/checks.hpp"

namespace hal::lint {

bool is_known_check_name(std::string_view name) {
  if (name == "*") return true;
  for (const Check& c : all_checks()) {
    if (name == c.id || name == c.code) return true;
  }
  return false;
}

void run_suppress_hygiene(CheckContext& ctx) {
  for (const auto& file : ctx.model().files()) {
    for (const Suppression& sup : file->suppressions()) {
      if (!sup.has_reason) {
        ctx.report_unsuppressable(
            *file, sup.line, 1, "hal-suppress-needs-reason",
            "HAL_LINT_SUPPRESS without a reason; write "
            "'// HAL_LINT_SUPPRESS(check): why this is sound'");
      }
      for (const std::string& name : sup.checks) {
        if (!is_known_check_name(name)) {
          ctx.report_unsuppressable(
              *file, sup.line, 1, "hal-suppress-needs-reason",
              "HAL_LINT_SUPPRESS names unknown check '" + name +
                  "' (run hal-lint --list-checks)");
        }
      }
      if (sup.checks.empty()) {
        ctx.report_unsuppressable(
            *file, sup.line, 1, "hal-suppress-needs-reason",
            "HAL_LINT_SUPPRESS with an empty check list");
      }
    }
  }
}

void run_stale_suppress(CheckContext& ctx) {
  for (const auto& file : ctx.model().files()) {
    for (const Suppression& sup : file->suppressions()) {
      if (sup.used) continue;
      // Malformed suppressions are HL000's findings; auditing them as
      // stale as well would double-report one mistake.
      if (!sup.has_reason || sup.checks.empty()) continue;
      bool well_formed = true;
      for (const std::string& name : sup.checks) {
        if (!is_known_check_name(name)) well_formed = false;
      }
      if (!well_formed) continue;
      ctx.report_unsuppressable(
          *file, sup.line, 1, "hal-stale-suppress",
          "stale HAL_LINT_SUPPRESS: no diagnostic of the named check(s) "
          "fires here any more; delete it so it cannot swallow the next "
          "real finding");
    }
  }
}

}  // namespace hal::lint
