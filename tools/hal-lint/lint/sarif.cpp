#include "lint/sarif.hpp"

#include <cstdio>

#include "lint/checks.hpp"

namespace hal::lint {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string sarif_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\n";
  out += "      \"name\": \"hal-lint\",\n";
  out += "      \"rules\": [\n";
  bool first = true;
  for (const Check& c : all_checks()) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\"id\": \"" + json_escape(c.id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(c.summary) + "\"}}";
  }
  out += "\n      ]\n";
  out += "    }},\n";
  out += "    \"results\": [\n";
  first = true;
  for (const Diagnostic& d : diags) {
    if (!first) out += ",\n";
    first = false;
    out += "      {\"ruleId\": \"" + json_escape(d.check) +
           "\", \"level\": \"warning\",\n";
    out += "       \"message\": {\"text\": \"" + json_escape(d.message) +
           "\"},\n";
    out += "       \"locations\": [{\"physicalLocation\": {";
    out += "\"artifactLocation\": {\"uri\": \"" + json_escape(d.file) +
           "\"}, ";
    out += "\"region\": {\"startLine\": " + std::to_string(d.line) +
           ", \"startColumn\": " + std::to_string(d.col) + "}}}]}";
  }
  out += "\n    ]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

bool write_sarif(const std::string& path,
                 const std::vector<Diagnostic>& diags) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = sarif_text(diags);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                  text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hal::lint
