#include "lint/sarif.hpp"

#include <cstdint>
#include <cstdio>
#include <set>
#include <tuple>

#include "lint/checks.hpp"

namespace hal::lint {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Stable per-result fingerprint for code-scanning alert tracking
/// (FNV-1a over rule, file and message — deliberately line-independent so
/// unrelated edits above a finding don't retire and re-open its alert).
std::string fingerprint(const Diagnostic& d) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::string_view s) {
    for (char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
    h ^= 0xffu;  // field separator
    h *= 1099511628211ull;
  };
  mix(d.check);
  mix(d.file);
  mix(d.message);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string sarif_text(const std::vector<Diagnostic>& diags) {
  // Dedupe by (rule, file, line): several passes can flag the same site
  // (or the same header seen through several TUs), and duplicate results
  // in one upload churn code-scanning alerts.
  std::set<std::tuple<std::string, std::string, std::uint32_t>> seen;
  std::vector<const Diagnostic*> unique;
  unique.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    if (seen.emplace(d.check, d.file, d.line).second) unique.push_back(&d);
  }
  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\n";
  out += "      \"name\": \"hal-lint\",\n";
  out += "      \"rules\": [\n";
  bool first = true;
  for (const Check& c : all_checks()) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\"id\": \"" + json_escape(c.id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(c.summary) + "\"}}";
  }
  out += "\n      ]\n";
  out += "    }},\n";
  out += "    \"results\": [\n";
  first = true;
  for (const Diagnostic* dp : unique) {
    const Diagnostic& d = *dp;
    if (!first) out += ",\n";
    first = false;
    out += "      {\"ruleId\": \"" + json_escape(d.check) +
           "\", \"level\": \"warning\",\n";
    out += "       \"message\": {\"text\": \"" + json_escape(d.message) +
           "\"},\n";
    out += "       \"partialFingerprints\": ";
    out += "{\"halLintFingerprint/v1\": \"" + fingerprint(d) + "\"},\n";
    out += "       \"locations\": [{\"physicalLocation\": {";
    out += "\"artifactLocation\": {\"uri\": \"" + json_escape(d.file) +
           "\"}, ";
    out += "\"region\": {\"startLine\": " + std::to_string(d.line) +
           ", \"startColumn\": " + std::to_string(d.col) + "}}}]}";
  }
  out += "\n    ]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

bool write_sarif(const std::string& path,
                 const std::vector<Diagnostic>& diags) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = sarif_text(diags);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                  text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hal::lint
