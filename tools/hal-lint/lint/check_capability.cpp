// HL005 hal-capability-coverage.
//
// Contract: HAL's per-node single-writer discipline (DESIGN.md §5) is
// spelled with hal::check capability objects — a class that owns a
// check::NodeAffinityGuard has opted its state into the discipline, and
// then EVERY mutable data member must either
//   - carry HAL_GUARDED_BY(<guard>) (checked by clang -Wthread-safety in
//     CI and by the debug invariant checker at runtime), or
//   - be of a type that owns its own NodeAffinityGuard (delegated
//     guarding: BufferPool inside Kernel guards itself), or
//   - be const / constexpr / static / a reference (no mutable per-node
//     state to race on), or
//   - be explicitly suppressed with a written reason.
//
// Partial coverage is the dangerous state this check exists for: a class
// that guards three members and silently leaves the fourth unguarded
// reads as "covered" in review while the unguarded member is exactly
// where the cross-node mutation hides.
//
// A suppression on the class-head line covers the whole class.
#include <cctype>

#include "lint/checks.hpp"

namespace hal::lint {
namespace {

/// True if the member's type names a scanned class that owns its own
/// NodeAffinityGuard (delegated guarding).
bool self_guarding_type(const Model& model, const MemberVar& m) {
  for (const ClassDecl& c : model.classes()) {
    if (!c.owns_affinity_guard && c.name != "NodeAffinityGuard" &&
        c.name != "ScopedExecutionNode") {
      continue;
    }
    // Token-exact match against the type text to avoid substring hits.
    const std::string& ty = m.type_text;
    std::size_t pos = 0;
    while ((pos = ty.find(c.name, pos)) != std::string::npos) {
      const bool left_ok =
          pos == 0 || !(std::isalnum(static_cast<unsigned char>(
                            ty[pos - 1])) != 0 ||
                        ty[pos - 1] == '_');
      const std::size_t after = pos + c.name.size();
      const bool right_ok =
          after >= ty.size() ||
          !(std::isalnum(static_cast<unsigned char>(ty[after])) != 0 ||
            ty[after] == '_');
      if (left_ok && right_ok) return true;
      pos = after;
    }
  }
  return false;
}

}  // namespace

void run_capability_coverage(CheckContext& ctx) {
  Model& model = ctx.mutable_model();
  for (const ClassDecl& cls : model.classes()) {
    if (!cls.owns_affinity_guard || cls.file == nullptr) continue;
    SourceFile& file = *cls.file;
    // Class-wide opt-out: suppression on the class-head line.
    if (file.is_suppressed("hal-capability-coverage", cls.line)) continue;
    for (const MemberVar& m : cls.members) {
      if (m.guarded || m.is_static || m.is_constexpr || m.is_const ||
          m.is_reference) {
        continue;
      }
      if (m.type_text.find("NodeAffinityGuard") != std::string::npos) {
        continue;  // the guard itself
      }
      if (self_guarding_type(model, m)) continue;
      ctx.report(file, m.line, 1, "hal-capability-coverage",
                 "mutable member '" + m.name + "' of per-node class '" +
                     cls.name +
                     "' (owns a NodeAffinityGuard) lacks HAL_GUARDED_BY; "
                     "annotate it, delegate to a self-guarding type, or "
                     "suppress with the reason the member is race-free");
    }
  }
}

}  // namespace hal::lint
