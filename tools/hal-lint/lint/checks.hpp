// Check registry for hal-lint.
//
// Each check states one contract of the HAL runtime (see docs/linting.md
// for the full statements and their paper rationale):
//
//   HL000 hal-suppress-needs-reason  suppressions must carry a rationale
//   HL001 hal-handler-purity         AM handlers stay non-blocking and
//                                    allocation-free (CMAM discipline)
//   HL002 hal-buffer-lifecycle      acquired pool buffers retire exactly
//                                    once on every path
//   HL003 hal-actor-state-escape     behaviours must not leak actor state
//                                    into continuations (migration hazard)
//   HL004 hal-wire-hygiene           no raw casts / magic sizes on the
//                                    wire layer
//   HL005 hal-capability-coverage    per-node state opting into the
//                                    NodeAffinityGuard idiom is covered
//   HL006 hal-park-loop-protocol     park loops re-arm the sleeping flag
//                                    with a seq_cst exchange before every
//                                    predicate evaluation
//   HL007 hal-memory-order-policy    marked protocol structs obey their
//                                    per-struct memory-order policy table
//   HL008 hal-send-graph             cross-TU send/handler graph: no
//                                    unreachable handlers, no word-count
//                                    drift between encode and decode
//   HL009 hal-epoch-conservation     every publish on an epoch-counted
//                                    channel bumps sent, every take is
//                                    accounted as handled
//   HL010 hal-stale-suppress         suppressions that no longer silence
//                                    anything must be deleted
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lint/model.hpp"

namespace hal::lint {

class CheckContext {
 public:
  CheckContext(Model& model, std::vector<Diagnostic>& out)
      : model_(model), out_(out) {}

  const Model& model() const { return model_; }

  /// Emits a diagnostic unless a suppression covers (check, line).
  void report(SourceFile& file, std::uint32_t line, std::uint32_t col,
              const std::string& check, std::string message) {
    if (file.is_suppressed(check, line)) return;
    out_.push_back(Diagnostic{file.path(), line, col, check,
                              std::move(message)});
  }

  /// Emits unconditionally (used by the suppression-hygiene check, which
  /// must not be silenceable by the thing it polices).
  void report_unsuppressable(SourceFile& file, std::uint32_t line,
                             std::uint32_t col, const std::string& check,
                             std::string message) {
    out_.push_back(Diagnostic{file.path(), line, col, check,
                              std::move(message)});
  }

  Model& mutable_model() { return model_; }

 private:
  Model& model_;
  std::vector<Diagnostic>& out_;
};

struct Check {
  const char* id;    ///< "hal-handler-purity"
  const char* code;  ///< "HL001"
  const char* summary;
  void (*run)(CheckContext&);
  /// Only meaningful over the full check set: skipped under --checks=
  /// subsets (e.g. the stale-suppression audit, which would misread a
  /// suppression for a disabled check as stale).
  bool requires_full_run = false;
};

/// All registered checks, in code order.
const std::vector<Check>& all_checks();

// Individual entry points (one translation unit per check).
void run_suppress_hygiene(CheckContext& ctx);   // HL000
void run_handler_purity(CheckContext& ctx);     // HL001
void run_buffer_lifecycle(CheckContext& ctx);   // HL002
void run_actor_escape(CheckContext& ctx);       // HL003
void run_wire_hygiene(CheckContext& ctx);       // HL004
void run_capability_coverage(CheckContext& ctx);  // HL005
void run_park_loop(CheckContext& ctx);            // HL006
void run_memory_order(CheckContext& ctx);         // HL007
void run_send_graph(CheckContext& ctx);           // HL008
void run_epoch_conservation(CheckContext& ctx);   // HL009
void run_stale_suppress(CheckContext& ctx);       // HL010

}  // namespace hal::lint
