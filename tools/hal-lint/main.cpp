// hal-lint: contract checker for HAL's runtime idioms.
//
// Usage:
//   hal-lint [--checks=a,b] [--skip=sub,..] [--sarif out.json]
//            [--list-checks] <file-or-dir>...
//
// Directories are scanned recursively for .hpp/.h/.cpp/.cc files;
// --skip drops collected paths containing any of the given substrings
// (scoped exemptions for generated or third-party-shaped code).
// Diagnostics go to stdout as `path:line:col: warning: message [check]`;
// --sarif additionally writes them as a SARIF 2.1.0 log for GitHub code
// scanning; a summary goes to stderr. Exit status 1 if any diagnostic
// fired.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/checks.hpp"
#include "lint/sarif.hpp"

namespace hal::lint {

const std::vector<Check>& all_checks() {
  static const std::vector<Check> kChecks = {
      {"hal-suppress-needs-reason", "HL000",
       "HAL_LINT_SUPPRESS must name a known check and give a reason",
       &run_suppress_hygiene},
      {"hal-handler-purity", "HL001",
       "AM-handler-reachable code must not block, allocate, or re-enter "
       "the executor",
       &run_handler_purity},
      {"hal-buffer-lifecycle", "HL002",
       "acquired pool buffers retire exactly once on every path",
       &run_buffer_lifecycle},
      {"hal-actor-state-escape", "HL003",
       "behaviour continuations must not capture this / by reference",
       &run_actor_escape},
      {"hal-wire-hygiene", "HL004",
       "no raw casts or magic sizes on the wire layer",
       &run_wire_hygiene},
      {"hal-capability-coverage", "HL005",
       "NodeAffinityGuard owners must guard every mutable member",
       &run_capability_coverage},
      {"hal-park-loop-protocol", "HL006",
       "park loops re-arm the sleeping flag with exchange(true, seq_cst) "
       "before every predicate evaluation",
       &run_park_loop},
      {"hal-memory-order-policy", "HL007",
       "HAL_MEMORY_PROTOCOL structs obey their per-struct memory-order "
       "policy table",
       &run_memory_order},
      {"hal-send-graph", "HL008",
       "every handler id is both sent and decoded, with agreeing word "
       "footprints",
       &run_send_graph},
      {"hal-epoch-conservation", "HL009",
       "epoch-counted channels bump sent on publish and account every "
       "take as handled",
       &run_epoch_conservation},
      // Last on purpose: reads the `used` flags the other checks set.
      {"hal-stale-suppress", "HL010",
       "suppressions that silence nothing any more must be deleted",
       &run_stale_suppress, /*requires_full_run=*/true},
  };
  return kChecks;
}

}  // namespace hal::lint

namespace {

using hal::lint::all_checks;
using hal::lint::Check;
using hal::lint::CheckContext;
using hal::lint::Diagnostic;
using hal::lint::Model;
using hal::lint::SourceFile;

bool source_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

void collect(const std::string& arg, std::vector<std::string>& out) {
  std::error_code ec;
  if (std::filesystem::is_directory(arg, ec)) {
    for (auto it = std::filesystem::recursive_directory_iterator(arg, ec);
         !ec && it != std::filesystem::recursive_directory_iterator();
         ++it) {
      if (it->is_regular_file(ec) && source_extension(it->path())) {
        out.push_back(it->path().generic_string());
      }
    }
    return;
  }
  out.push_back(arg);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> enabled;
  std::vector<std::string> skips;
  std::string sarif_path;
  const auto split_into = [](const std::string& list,
                             std::vector<std::string>& out) {
    std::size_t pos = 0;
    while (pos <= list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      if (comma > pos) out.push_back(list.substr(pos, comma - pos));
      pos = comma + 1;
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const Check& c : all_checks()) {
        std::printf("%s %-26s %s\n", c.code, c.id, c.summary);
      }
      return 0;
    }
    if (arg.rfind("--checks=", 0) == 0) {
      split_into(arg.substr(9), enabled);
      continue;
    }
    if (arg.rfind("--skip=", 0) == 0) {
      split_into(arg.substr(7), skips);
      continue;
    }
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      continue;
    }
    if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hal-lint [--checks=a,b] [--skip=sub,..] "
          "[--sarif out.json] [--list-checks] <path>...\n");
      return 0;
    }
    collect(arg, paths);
  }
  if (!skips.empty()) {
    paths.erase(std::remove_if(paths.begin(), paths.end(),
                               [&](const std::string& p) {
                                 for (const std::string& s : skips) {
                                   if (p.find(s) != std::string::npos) {
                                     return true;
                                   }
                                 }
                                 return false;
                               }),
                paths.end());
  }
  if (paths.empty()) {
    std::fprintf(stderr, "hal-lint: no input files\n");
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  Model model;
  for (const std::string& p : paths) {
    auto file = SourceFile::load(p);
    if (file == nullptr) {
      std::fprintf(stderr, "hal-lint: cannot read %s\n", p.c_str());
      return 2;
    }
    model.add_file(std::move(file));
  }

  std::vector<Diagnostic> diags;
  CheckContext ctx(model, diags);
  for (const Check& c : all_checks()) {
    if (c.requires_full_run && !enabled.empty()) continue;
    const bool on =
        enabled.empty() ||
        std::any_of(enabled.begin(), enabled.end(),
                    [&](const std::string& e) {
                      return e == c.id || e == c.code;
                    });
    if (on) c.run(ctx);
  }

  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.check < b.check;
                   });
  for (const Diagnostic& d : diags) {
    std::printf("%s:%u:%u: warning: %s [%s]\n", d.file.c_str(), d.line,
                d.col, d.message.c_str(), d.check.c_str());
  }
  if (!sarif_path.empty() && !hal::lint::write_sarif(sarif_path, diags)) {
    std::fprintf(stderr, "hal-lint: cannot write %s\n",
                 sarif_path.c_str());
    return 2;
  }
  std::size_t suppressions_used = 0;
  for (const auto& f : model.files()) {
    for (const auto& s : f->suppressions()) {
      if (s.used) ++suppressions_used;
    }
  }
  std::fprintf(stderr,
               "hal-lint: %zu file(s), %zu warning(s), %zu suppression(s) "
               "honoured\n",
               model.files().size(), diags.size(), suppressions_used);
  return diags.empty() ? 0 : 1;
}
